"""Truncated (range-scaled) Beta distributions.

The paper defines its pfd priors as Beta distributions *"defined in the
range [0, 0.002]"* (Scenario 1) or *"[0, 0.01]"* (Scenario 2): a standard
Beta on [0, 1] linearly rescaled onto ``[lower, upper]``.  This module
wraps scipy's Beta with that affine change of variable and exposes exactly
the operations the assessors need: pdf on a grid, cdf, inverse cdf, mean
and sampling.
"""

from typing import Optional

import numpy as np
from scipy import stats

from repro.common.errors import ValidationError
from repro.common.validation import check_positive


class TruncatedBeta:
    """Beta(alpha, beta) rescaled to the interval ``[lower, upper]``.

    If ``X ~ Beta(alpha, beta)`` on [0, 1] then this distribution is that
    of ``lower + (upper - lower) * X``.

    Example (the paper's Scenario 1 old-release prior):

    >>> prior_a = TruncatedBeta(20, 20, upper=0.002)
    >>> round(prior_a.mean, 6)
    0.001
    """

    def __init__(
        self,
        alpha: float,
        beta: float,
        upper: float,
        lower: float = 0.0,
    ):
        self.alpha = check_positive(alpha, "alpha")
        self.beta = check_positive(beta, "beta")
        if not 0.0 <= lower < upper:
            raise ValidationError(
                f"need 0 <= lower < upper, got [{lower!r}, {upper!r}]"
            )
        self.lower = float(lower)
        self.upper = float(upper)
        self._width = self.upper - self.lower
        self._dist = stats.beta(self.alpha, self.beta)

    @property
    def mean(self) -> float:
        """E[X] = lower + width * alpha / (alpha + beta)."""
        return self.lower + self._width * self.alpha / (self.alpha + self.beta)

    @property
    def variance(self) -> float:
        a, b = self.alpha, self.beta
        unit_var = a * b / ((a + b) ** 2 * (a + b + 1.0))
        return self._width ** 2 * unit_var

    def _to_unit(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=float) - self.lower) / self._width

    def pdf(self, x) -> np.ndarray:
        """Density at *x* (zero outside the support)."""
        unit = self._to_unit(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            dens = self._dist.pdf(unit) / self._width
        return np.where((unit >= 0.0) & (unit <= 1.0), dens, 0.0)

    def logpdf(self, x) -> np.ndarray:
        """Log-density at *x* (-inf outside the support)."""
        unit = self._to_unit(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            logdens = self._dist.logpdf(unit) - np.log(self._width)
        return np.where(
            (unit >= 0.0) & (unit <= 1.0), logdens, -np.inf
        )

    def cdf(self, x) -> np.ndarray:
        """P(X <= x)."""
        unit = np.clip(self._to_unit(x), 0.0, 1.0)
        return self._dist.cdf(unit)

    def ppf(self, q) -> np.ndarray:
        """Inverse cdf: the paper's percentiles (e.g. ``ppf(0.99)``)."""
        return self.lower + self._width * self._dist.ppf(q)

    def sample(
        self, rng: np.random.Generator, size: Optional[int] = None
    ):
        """Draw samples using *rng*."""
        draws = rng.beta(self.alpha, self.beta, size=size)
        return self.lower + self._width * draws

    def grid(self, points: int) -> np.ndarray:
        """Cell-midpoint grid over the support, for quadrature."""
        if points <= 0:
            raise ValidationError(f"points must be > 0: {points!r}")
        edges = np.linspace(self.lower, self.upper, points + 1)
        return 0.5 * (edges[:-1] + edges[1:])

    def grid_weights(self, points: int) -> np.ndarray:
        """Prior probability mass of each midpoint cell (sums to 1).

        Computed from cdf differences rather than pdf × width so that very
        peaked priors (e.g. Beta(20, 20)) lose no mass to discretisation.
        """
        edges = np.linspace(self.lower, self.upper, points + 1)
        mass = np.diff(self.cdf(edges))
        total = mass.sum()
        if total <= 0.0:
            raise ValidationError("prior mass vanished on the grid")
        return mass / total

    def __repr__(self) -> str:
        return (
            f"TruncatedBeta(alpha={self.alpha!r}, beta={self.beta!r}, "
            f"range=[{self.lower!r}, {self.upper!r}])"
        )
