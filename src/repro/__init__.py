"""repro — Dependable Composite Web Services with Components Upgraded Online.

A complete, self-contained Python reproduction of

    A. Gorbenko, V. Kharchenko, P. Popov, A. Romanovsky,
    "Dependable Composite Web Services with Components Upgraded Online",
    DSN 2004 (TR CS-TR-897, University of Newcastle upon Tyne).

Subpackages
-----------
:mod:`repro.core`
    The paper's contribution: the managed-upgrade middleware,
    adjudicators, operating modes, monitoring/management subsystems,
    switching criteria and upgrade controller.
:mod:`repro.bayes`
    Confidence-in-correctness assessment: black-box (eq. 1) and
    white-box (eq. 2-6) Bayesian inference, imperfect-detection models.
:mod:`repro.simulation`
    Discrete-event kernel, latency and outcome models (§5.2).
:mod:`repro.services`
    WSDL / UDDI / SOAP analogues, composite services, fault injection,
    upgrade notification, confidence publishing (§6).
:mod:`repro.experiments`
    Regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro.bayes import (TruncatedBeta, WhiteBoxPrior, WhiteBoxAssessor,
...                          JointCounts)
>>> prior = WhiteBoxPrior(TruncatedBeta(20, 20, upper=2e-3),
...                       TruncatedBeta(2, 3, upper=2e-3))
>>> assessor = WhiteBoxAssessor(prior)
>>> assessor.observe(JointCounts(0, 2, 1, 9997))
>>> confidence_new_release = assessor.confidence_b(1.5e-3)

See ``examples/quickstart.py`` for the full managed-upgrade loop.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
