"""Plain-text table rendering for paper-style experiment reports.

The experiment harness prints tables whose rows mirror the layout of the
paper's Tables 2, 5 and 6 so that the reproduction can be compared with the
original side by side.  Rendering is dependency-free (no tabulate).
"""

from typing import Iterable, List, Optional, Sequence


def format_cell(value: object, float_digits: int = 4) -> str:
    """Render a single table cell.

    Floats are fixed-point with *float_digits* decimals; ints keep their
    natural form; ``None`` renders as an em-dash.
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_digits: int = 4,
) -> str:
    """Render *rows* under *headers* as an aligned monospace table.

    Returns the table as a single string (no trailing newline) so callers
    can both ``print`` it and embed it in EXPERIMENTS.md.
    """
    rendered_rows: List[List[str]] = [
        [format_cell(cell, float_digits) for cell in row] for row in rows
    ]
    header_cells = [str(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row width {len(row)} != header width {len(header_cells)}"
            )
    widths = [
        max(len(header_cells[i]), *(len(r[i]) for r in rendered_rows))
        if rendered_rows
        else len(header_cells[i])
        for i in range(len(header_cells))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header_cells, widths)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_digits: int = 4,
) -> str:
    """Render the same data as a GitHub-flavoured markdown table."""
    out: List[str] = []
    out.append("| " + " | ".join(str(h) for h in headers) + " |")
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        cells = [format_cell(cell, float_digits) for cell in row]
        if len(cells) != len(headers):
            raise ValueError("row width does not match header width")
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)
