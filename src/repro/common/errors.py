"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still being able to discriminate the failing subsystem.
"""


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was configured with inconsistent or incomplete settings."""


class ValidationError(ReproError, ValueError):
    """A caller supplied an argument outside its documented domain."""


class SimulationError(ReproError):
    """The discrete-event kernel detected an inconsistent state.

    Examples: scheduling an event in the past, running a simulator that has
    already been stopped, or an event handler raising during dispatch.
    """


class InferenceError(ReproError):
    """A Bayesian assessment could not be carried out.

    Raised e.g. when a posterior underflows everywhere on the grid (the
    observations are impossible under the prior's support) or when a
    percentile is requested from an assessor that has seen no prior.
    """


class ServiceError(ReproError):
    """Base class for failures signalled by the simulated WS substrate."""


class ServiceUnavailableError(ServiceError):
    """No response was collected from any deployed release within TimeOut.

    Mirrors the middleware rule of Section 5.2.1 of the paper: *"if no
    response has been collected the middleware returns a response 'Web
    Service unavailable'"*.
    """


class EvidentFailureError(ServiceError):
    """All collected responses were evidently incorrect.

    Mirrors the middleware rule: *"if all collected responses are evidently
    incorrect then the middleware raises an exception"*.
    """


class UnknownOperationError(ServiceError):
    """A consumer invoked an operation absent from the service's WSDL."""
