"""Deterministic random-stream management.

Every stochastic component of the library draws from its own
``numpy.random.Generator``.  A :class:`SeedSequenceFactory` hands out
independent child streams from one root seed so that

* a whole experiment is reproducible from a single integer, and
* adding a new consumer of randomness does not perturb the draws seen by
  existing consumers (streams are keyed by name, not by creation order).
"""

from typing import Dict, Optional

import numpy as np

from repro.common.errors import ConfigurationError

#: Root seed used by components whose caller supplied no generator
#: (``SimulatedTransport``, ``PoissonWorkload``, ``SimulatedAcceptanceTest``).
#: A *fixed* fallback keeps even exploratory, no-arguments usage
#: reproducible — an OS-entropy default would be exactly the silent
#: nondeterminism repro.lint rule REPRO101 exists to ban.
DEFAULT_COMPONENT_SEED = 0


def spawn_generator(seed: Optional[int] = None) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for *seed*.

    ``None`` yields OS-entropy seeding, which is appropriate only for
    exploratory use; all experiment entry points pass explicit seeds,
    and library components default to :data:`DEFAULT_COMPONENT_SEED`
    rather than ``None``.
    """
    return np.random.default_rng(seed)


class SeedSequenceFactory:
    """Derive named, independent random streams from one root seed.

    Streams are derived with ``numpy.random.SeedSequence(root, spawn_key)``
    where the spawn key is a stable hash of the stream name.  Requesting the
    same name twice returns generators with identical state histories, which
    the test suite relies on.

    Example
    -------
    >>> factory = SeedSequenceFactory(42)
    >>> workload_rng = factory.generator("workload")
    >>> release_rng = factory.generator("release/1.1")
    """

    def __init__(self, root_seed: int):
        if not isinstance(root_seed, (int, np.integer)) or isinstance(
            root_seed, bool
        ):
            raise ConfigurationError(
                f"root_seed must be an integer, got {root_seed!r}"
            )
        self._root_seed = int(root_seed)
        self._issued: Dict[str, int] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this factory was created with."""
        return self._root_seed

    def _key_for(self, name: str) -> int:
        # A stable, platform-independent 63-bit key derived from the name.
        # (Python's built-in hash() is salted per process, so roll our own.)
        key = 0
        for ch in name:
            key = (key * 1000003 + ord(ch)) & 0x7FFFFFFFFFFFFFFF
        return key

    def seed_sequence(self, name: str) -> np.random.SeedSequence:
        """Return the :class:`numpy.random.SeedSequence` for stream *name*."""
        if not name:
            raise ConfigurationError("stream name must be non-empty")
        key = self._key_for(name)
        self._issued[name] = key
        return np.random.SeedSequence(self._root_seed, spawn_key=(key,))

    def generator(self, name: str) -> np.random.Generator:
        """Return a generator for the independent stream called *name*."""
        return np.random.default_rng(self.seed_sequence(name))

    def child_seed(self, name: str) -> int:
        """A derived integer root seed for an independent child cell.

        The parallel experiment runtime gives every grid cell its own
        root seed, derived deterministically from (root seed, cell name).
        A cell seeded this way is reproducible in isolation — the same
        cell re-run alone, inline, or in any worker of a process pool
        draws identical streams.  The value is a stable 63-bit integer
        (platform-independent, like the stream keys).
        """
        state = self.seed_sequence(name).generate_state(1, dtype=np.uint64)
        return int(state[0] & 0x7FFFFFFFFFFFFFFF)

    def issued_streams(self) -> Dict[str, int]:
        """Mapping of stream names to spawn keys issued so far (for audit)."""
        return dict(self._issued)
