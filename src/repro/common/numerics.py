"""Order-independent numeric accumulation helpers.

Floating-point addition is not associative, so ``sum()`` over a
collection whose iteration order is not fixed (a set, or a dict whose
insertion history differs between sequential and parallel runs) can
round differently run-to-run.  These helpers make accumulation
independent of iteration order — :func:`math.fsum` is exactly rounded,
so its result is the same for every permutation of the summands — which
is what lets the parallel experiment runtime promise bit-identical
results for any ``--jobs`` value.  ``repro.lint`` rule REPRO105 points
stats/metrics code here.
"""

import math
from typing import Iterable, Mapping

__all__ = ["stable_sum", "stable_mean", "stable_dot_sum"]


def stable_sum(values: Iterable[float]) -> float:
    """Exactly-rounded sum, independent of iteration order.

    Safe over sets, dict views, and generator output in any order.
    Integer inputs come back as an integral float (``fsum`` always
    returns ``float``); callers needing an ``int`` should wrap in
    ``int(...)`` after checking integrality.
    """
    return math.fsum(values)


def stable_mean(values: Iterable[float]) -> float:
    """Order-independent arithmetic mean (NaN for an empty iterable)."""
    items = list(values)
    if not items:
        return float("nan")
    return math.fsum(items) / len(items)


def stable_dot_sum(weights: Mapping[object, float]) -> float:
    """Order-independent sum of a mapping's values.

    Provided for accumulator dicts (label -> weight) so call sites
    don't have to spell ``stable_sum(mapping.values())`` and re-explain
    why the view's order doesn't matter.
    """
    return math.fsum(weights.values())
