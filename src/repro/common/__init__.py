"""Shared utilities: errors, validation, seeding and table rendering.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` builds on them.
"""

from repro.common.errors import (
    ReproError,
    ConfigurationError,
    ValidationError,
    SimulationError,
    InferenceError,
    ServiceError,
)
from repro.common.seeding import SeedSequenceFactory, spawn_generator
from repro.common.validation import (
    check_probability,
    check_positive,
    check_non_negative,
    check_in_range,
    check_distribution,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ValidationError",
    "SimulationError",
    "InferenceError",
    "ServiceError",
    "SeedSequenceFactory",
    "spawn_generator",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_distribution",
]
