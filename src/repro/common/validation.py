"""Small argument-validation helpers used across the library.

Each helper raises :class:`repro.common.errors.ValidationError` with a
message naming the offending parameter, so failures surface at the API
boundary instead of deep inside numerics.
"""

import math
from typing import Iterable, Sequence, Tuple

from repro.common.errors import ValidationError

#: Tolerance used when checking that probability vectors sum to one.
PROBABILITY_SUM_TOL = 1e-9


def check_probability(value: float, name: str) -> float:
    """Return *value* if it is a probability in ``[0, 1]``, else raise."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    if math.isnan(value) or not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_positive(value: float, name: str) -> float:
    """Return *value* if it is strictly positive, else raise."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    if math.isnan(value) or value <= 0.0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Return *value* if it is zero or positive, else raise."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    if math.isnan(value) or value < 0.0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return *value* if ``low <= value <= high``, else raise."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    if math.isnan(value) or not low <= value <= high:
        raise ValidationError(
            f"{name} must lie in [{low}, {high}], got {value!r}"
        )
    return float(value)


def check_distribution(
    values: Sequence[float], name: str
) -> Tuple[float, ...]:
    """Validate that *values* form a probability distribution.

    Every entry must be a probability and the entries must sum to one
    (within :data:`PROBABILITY_SUM_TOL`).  Returns the values as a tuple of
    floats.
    """
    probs = tuple(
        check_probability(v, f"{name}[{i}]") for i, v in enumerate(values)
    )
    total = sum(probs)
    if abs(total - 1.0) > PROBABILITY_SUM_TOL:
        raise ValidationError(
            f"{name} must sum to 1 (got {total!r} from {values!r})"
        )
    return probs


def check_sorted_unique(
    values: Iterable[float], name: str
) -> Tuple[float, ...]:
    """Validate that *values* are strictly increasing; return them as tuple."""
    out = tuple(float(v) for v in values)
    for previous, current in zip(out, out[1:]):
        if current <= previous:
            raise ValidationError(
                f"{name} must be strictly increasing, got {out!r}"
            )
    return out
