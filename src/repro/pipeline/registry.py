"""Module-scan registry of :class:`~repro.pipeline.spec.ExperimentSpec`.

Experiment modules register their spec at import time::

    TABLE5 = register(ExperimentSpec(name="table5", ...))

and :func:`discover` walks every module of ``repro.experiments`` so
that a registration is never missed because nothing happened to import
its module yet.  The CLI, the tests and the benchmarks all consume the
same registry: adding an experiment is writing a spec — the subcommand,
cache, tracing and metrics wiring come from the engine for free.
"""

import importlib
import pkgutil
from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.pipeline.spec import ExperimentSpec

#: The package whose modules are scanned for spec registrations.
EXPERIMENTS_PACKAGE = "repro.experiments"

_SPECS: Dict[str, ExperimentSpec] = {}
_DISCOVERED = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add *spec* to the registry; returns it for assignment.

    Re-registering the *same* spec object is a no-op (modules may be
    re-imported); a different spec under an existing name is an error —
    two experiments must never compete for one CLI subcommand.
    """
    existing = _SPECS.get(spec.name)
    if existing is not None and existing is not spec:
        raise ConfigurationError(
            f"duplicate experiment spec: {spec.name!r} is already "
            f"registered"
        )
    _SPECS[spec.name] = spec
    return spec


def discover() -> None:
    """Import every ``repro.experiments`` module so specs register.

    Idempotent; the CLI module itself is skipped (it consumes the
    registry rather than contributing to it), as are private modules.
    """
    global _DISCOVERED
    if _DISCOVERED:
        return
    package = importlib.import_module(EXPERIMENTS_PACKAGE)
    names: List[str] = sorted(
        info.name
        for info in pkgutil.iter_modules(package.__path__)
        if not info.name.startswith("_") and info.name != "cli"
    )
    for name in names:
        importlib.import_module(f"{EXPERIMENTS_PACKAGE}.{name}")
    _DISCOVERED = True


def get_spec(name: str) -> ExperimentSpec:
    """Look an experiment up by name (runs :func:`discover` first)."""
    discover()
    try:
        return _SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; registered: "
            f"{sorted(_SPECS)}"
        ) from None


def registered_specs() -> Dict[str, ExperimentSpec]:
    """All registered specs, keyed and sorted by name."""
    discover()
    return {name: _SPECS[name] for name in sorted(_SPECS)}


def experiment_names() -> List[str]:
    """Sorted names of every registered experiment."""
    return sorted(registered_specs())
