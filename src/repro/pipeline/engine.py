"""The one engine every experiment runs through.

:func:`run_experiment` takes a registered
:class:`~repro.pipeline.spec.ExperimentSpec` plus uniform
:class:`~repro.pipeline.spec.ExperimentOptions` and applies the whole
runtime stack in one place:

* size resolution (``--fast`` overlays, the ``--requests`` override);
* grid construction via the spec's ``build_cells`` hook;
* cache-key schema validation (cacheable cells must carry exactly the
  fields the spec declares — key drift would silently fork the cache);
* fan-out through :func:`~repro.runtime.parallel.run_cells`, which
  gives every experiment the process pool, the on-disk result cache,
  the event-sourced run store (per-cell commits + resume) and the
  pool/cache metrics;
* reduction and rendering.

Because cells derive their randomness from explicit per-cell seeds, a
run is bit-identical for any ``jobs`` value, and a cached replay equals
a fresh run — the engine is what makes those guarantees *uniform*
instead of per-experiment folklore.
"""

from dataclasses import dataclass
from typing import Any, List, Sequence

from repro.common.errors import ConfigurationError
from repro.pipeline.registry import get_spec
from repro.pipeline.spec import ExperimentOptions, ExperimentSpec
from repro.runtime.parallel import CellSpec, run_cells


@dataclass(frozen=True)
class ExperimentOutcome:
    """What one engine run produced.

    Attributes
    ----------
    spec / options:
        The experiment and the options it ran under.
    value:
        The reduced result object (table, curves, report, ...).
    text:
        The rendered textual output the CLI prints.
    cells:
        Number of grid cells executed or replayed (0 for composites).
    """

    spec: ExperimentSpec
    options: ExperimentOptions
    value: Any
    text: str
    cells: int = 0


def validate_cells(
    spec: ExperimentSpec, cells: Sequence[CellSpec]
) -> None:
    """Enforce the spec's cache-key schema over a built grid.

    Every cacheable cell must carry exactly the declared fields; traced
    cells opt out with ``key=None`` (a cache hit would skip simulation
    and leave an empty trace), which is always allowed.
    """
    schema = frozenset(spec.cache_schema)
    for index, cell in enumerate(cells):
        if cell.key is None:
            continue
        if not spec.cache_schema:
            raise ConfigurationError(
                f"experiment {spec.name!r} built a cacheable cell but "
                f"declares no cache_schema"
            )
        fields = frozenset(cell.key)
        if fields != schema:
            raise ConfigurationError(
                f"experiment {spec.name!r} cell {index} key fields "
                f"{sorted(fields)} do not match the declared "
                f"cache_schema {sorted(schema)}"
            )


def run_experiment(
    spec: ExperimentSpec, options: ExperimentOptions
) -> ExperimentOutcome:
    """Run one experiment end to end under the uniform runtime."""
    if spec.composite is not None:
        value = spec.composite(options)
        cell_count = 0
    else:
        if spec.build_cells is None or spec.reduce is None:
            raise ConfigurationError(
                f"experiment {spec.name!r} has no grid hooks"
            )
        cells: List[CellSpec] = list(
            spec.build_cells(options, spec.sizes(options))
        )
        validate_cells(spec, cells)
        cache = options.cache if spec.cacheable else None
        store = options.store if spec.cacheable else None
        results = run_cells(
            cells,
            jobs=options.jobs,
            cache=cache,
            metrics=options.metrics,
            store=store,
            batch=options.batch,
        )
        value = spec.reduce(results, options)
        cell_count = len(cells)
    if spec.render is None:  # unreachable after __post_init__; typed-core
        raise ConfigurationError(
            f"experiment {spec.name!r} has no render hook"
        )
    text = spec.render(value, options)
    return ExperimentOutcome(
        spec=spec,
        options=options,
        value=value,
        text=text,
        cells=cell_count,
    )


def run_named(name: str, options: ExperimentOptions) -> ExperimentOutcome:
    """Convenience: look the spec up in the registry and run it."""
    return run_experiment(get_spec(name), options)
