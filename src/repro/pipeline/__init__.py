"""Unified experiment pipeline: declarative specs, one engine.

``repro.pipeline`` is the mediator layer between the experiment
definitions (``repro.experiments``) and the runtime
(``repro.runtime`` pool + cache, ``repro.obs`` tracing + metrics):

* :class:`~repro.pipeline.spec.ExperimentSpec` — declarative
  description of one experiment (grid builder, reducer, renderer,
  size knobs, cache-key schema);
* :class:`~repro.pipeline.spec.ExperimentOptions` — the uniform run
  options every CLI flag maps onto;
* :mod:`~repro.pipeline.registry` — module-scan registry the CLI, the
  tests and CI enumerate;
* :func:`~repro.pipeline.engine.run_experiment` — the single engine
  that applies pool, cache, tracing and metrics to every registered
  experiment.

Registering a spec is all an experiment has to do; the subcommand, the
``--jobs``/``--cache*``/``--trace``/``--metrics-json``/``--fast``/
``--requests`` flags, bit-identical parallel fan-out and cache replay
come from this package.
"""

from repro.pipeline.engine import (
    ExperimentOutcome,
    run_experiment,
    run_named,
    validate_cells,
)
from repro.pipeline.registry import (
    discover,
    experiment_names,
    get_spec,
    register,
    registered_specs,
)
from repro.pipeline.spec import ExperimentOptions, ExperimentSpec

__all__ = [
    "ExperimentOptions",
    "ExperimentOutcome",
    "ExperimentSpec",
    "discover",
    "experiment_names",
    "get_spec",
    "register",
    "registered_specs",
    "run_experiment",
    "run_named",
    "validate_cells",
]
