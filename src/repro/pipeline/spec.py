"""Declarative experiment descriptions (:class:`ExperimentSpec`).

Every workload in this repository — the paper's Tables 2/5/6, the
Fig-7/8 percentile curves, the calibration and robustness ablations —
is structurally the same thing: a *grid* of independent Monte-Carlo
cells, a per-cell seed derivation, a reduction of cell results into a
result object, and a renderer.  An :class:`ExperimentSpec` captures
that structure declaratively:

* ``build_cells`` produces the grid as
  :class:`~repro.runtime.parallel.CellSpec` values (parameter product,
  per-cell child seeds, cache keys, per-cell trace paths);
* ``reduce`` folds the cell results (in grid order) into the
  experiment's result object;
* ``render`` turns that object into the CLI's textual output;
* ``full_sizes`` / ``fast_sizes`` are the declarative size knobs — the
  engine merges ``fast_sizes`` over ``full_sizes`` when ``--fast`` is
  given and applies the uniform ``--requests`` override to
  ``workload_key``;
* ``cache_schema`` names the fields every cacheable cell key must carry
  (enforced by the engine, so key drift is caught at build time);
* composite experiments that orchestrate other experiments (the
  markdown report) supply ``composite`` instead of a grid.

Specs are registered with :func:`repro.pipeline.registry.register` and
executed by :func:`repro.pipeline.engine.run_experiment`, which applies
the process pool, result cache, tracing and metrics uniformly — an
experiment module never talks to the runtime directly.
"""

import os
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.runtime.cache import ResultCache
from repro.runtime.parallel import CellSpec
from repro.store.log import RunStore


@dataclass(frozen=True)
class ExperimentOptions:
    """Uniform run options, shared by every experiment.

    One instance carries everything the CLI flags express: the root
    seed, the ``--fast`` switch, the latency-profile name, the worker
    count, the result cache (``None`` = disabled), the uniform
    workload override (``--requests``), the per-cell trace directory,
    the metrics registry, the report output path and the
    demand-resolution backend (``--backend``: ``event`` threads every
    demand through the event kernel, ``columnar`` resolves whole cells
    as array programs — bit-identical across all four §4.2 operating
    modes, any release count and retry — and ``auto``, the default,
    picks columnar everywhere except the genuinely event-only cases:
    tracing, live sampling and non-paper adjudicators; see
    :mod:`repro.runtime.columnar`).  Grids whose cells take a backend
    carry it in their cache keys, so the two paths never alias.

    ``store`` attaches an event-sourced :class:`~repro.store.log.RunStore`
    (the CLI's ``--store PATH``): completed cells are committed to the
    append-only log as they finish and already-committed cells are
    replayed from it, which is what makes interrupted grids resumable.

    ``batch`` (the CLI's ``--batch``/``--no-batch``, default on) lets
    the engine fuse cells that declare a
    :class:`~repro.runtime.parallel.BatchSpec` into stacked group
    executions — one shared demand-script arena, one batched resolver
    call and one fsync'd store commit per group — bit-identical to the
    per-cell path; ``batch=False`` pins every cell to the per-cell
    path.
    """

    seed: int
    fast: bool = False
    profile: str = "paper"
    jobs: int = 1
    cache: Optional[ResultCache] = None
    requests: Optional[int] = None
    trace_dir: Optional[str] = None
    metrics: Optional[MetricsRegistry] = None
    output: Optional[str] = None
    backend: str = "auto"
    store: Optional[RunStore] = None
    batch: bool = True

    def trace_path(self, filename: str) -> Optional[str]:
        """Per-cell trace file path, or ``None`` when tracing is off."""
        if self.trace_dir is None:
            return None
        return os.path.join(self.trace_dir, filename)


#: Cell kwargs that carry observability plumbing (tracers, metric
#: registries, per-cell trace paths) rather than cell parameters.  They
#: never influence a cell's numeric result, so they are exempt from the
#: cache-key completeness contract: every *other* kwarg must be covered
#: by the cell key / ``cache_schema``.  The whole-program analyzer
#: (REPRO201) applies the same exemption statically; its copy of this
#: tuple lives in ``repro.lint.config`` (lint never imports analyzed
#: code) and a sync test pins the two together.
CELL_OBSERVABILITY_PARAMS: Tuple[str, ...] = (
    "metrics",
    "trace_path",
    "trace_cell",
    "trace_dir",
    "tracer",
)

#: Builds the grid: (options, resolved sizes) -> cells.
CellBuilder = Callable[
    [ExperimentOptions, Dict[str, Any]], Sequence[CellSpec]
]
#: Folds cell results (grid order) into the experiment result object.
Reducer = Callable[[List[Any], ExperimentOptions], Any]
#: Renders the result object as the CLI's textual output.
Renderer = Callable[[Any, ExperimentOptions], str]
#: Escape hatch for composite experiments (the markdown report).
CompositeRunner = Callable[[ExperimentOptions], Any]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: grid + reduce + render + size knobs.

    Attributes
    ----------
    name:
        Registry key and CLI subcommand name.
    title:
        One-line description shown in the CLI listing.
    build_cells / reduce / render:
        The grid pipeline (see module docstring).  ``render`` is always
        required; ``build_cells``/``reduce`` are replaced by
        ``composite`` for orchestrating experiments.
    composite:
        Runs the whole experiment itself (e.g. the report, which
        re-runs other experiments); mutually exclusive with the grid
        hooks.  The engine still threads the options through, so
        composite experiments inherit cache/jobs/metrics uniformly.
    full_sizes / fast_sizes:
        Declarative size knobs; ``fast_sizes`` overlays ``full_sizes``
        under ``--fast``.
    workload_key:
        The size knob the uniform ``--requests N`` override rewrites
        (``requests``, ``samples``, ``total_demands``, ...); ``None``
        means the override is accepted but has no effect.
    cache_schema:
        Field names every cacheable cell key must consist of; the
        engine rejects grids whose keys drift from the schema.
    cacheable:
        ``False`` opts the whole experiment out of the result cache.
    in_all:
        Whether ``repro-experiments all`` includes this experiment.
    """

    name: str
    title: str
    build_cells: Optional[CellBuilder] = None
    reduce: Optional[Reducer] = None
    render: Optional[Renderer] = None
    composite: Optional[CompositeRunner] = None
    description: str = ""
    full_sizes: Mapping[str, Any] = field(default_factory=dict)
    fast_sizes: Mapping[str, Any] = field(default_factory=dict)
    workload_key: Optional[str] = None
    cache_schema: Tuple[str, ...] = ()
    cacheable: bool = True
    in_all: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("experiment spec needs a name")
        if self.render is None:
            raise ConfigurationError(
                f"experiment {self.name!r} needs a render hook"
            )
        if self.composite is None:
            if self.build_cells is None or self.reduce is None:
                raise ConfigurationError(
                    f"experiment {self.name!r} needs build_cells and "
                    f"reduce (or a composite runner)"
                )
        elif self.build_cells is not None or self.reduce is not None:
            raise ConfigurationError(
                f"experiment {self.name!r} is composite; it cannot also "
                f"define grid hooks"
            )
        unknown = set(self.fast_sizes) - set(self.full_sizes)
        if unknown:
            raise ConfigurationError(
                f"experiment {self.name!r} fast_sizes override unknown "
                f"size knobs: {sorted(unknown)}"
            )
        if (
            self.workload_key is not None
            and self.workload_key not in self.full_sizes
        ):
            raise ConfigurationError(
                f"experiment {self.name!r} workload_key "
                f"{self.workload_key!r} is not a declared size knob"
            )

    @property
    def is_composite(self) -> bool:
        """True for orchestrating experiments with no grid of their own."""
        return self.composite is not None

    def sizes(self, options: ExperimentOptions) -> Dict[str, Any]:
        """Resolve the size knobs for one run.

        ``fast_sizes`` overlays ``full_sizes`` when ``options.fast``;
        an explicit ``options.requests`` then rewrites the
        ``workload_key`` knob.  The result is what ``build_cells``
        receives as its second argument.
        """
        sizes = dict(self.full_sizes)
        if options.fast:
            sizes.update(self.fast_sizes)
        if options.requests is not None and self.workload_key is not None:
            sizes[self.workload_key] = options.requests
        return sizes
