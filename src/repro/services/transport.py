"""Simulated message transport.

Moves request/response envelopes between consumers, middleware and
endpoints over the discrete-event kernel, with configurable one-way
latency and loss.  The §5.2 experiments use the default loss-free,
zero-latency transport so that execution times follow eq. (7) exactly;
the examples use lossy/latent transports to exercise timeout handling.
"""

from typing import Callable, Optional

import numpy as np

from repro.common.seeding import DEFAULT_COMPONENT_SEED, spawn_generator
from repro.common.validation import check_probability
from repro.simulation.distributions import Deterministic, Distribution
from repro.simulation.engine import Simulator


class SimulatedTransport:
    """One-way message channel with latency and loss.

    Parameters
    ----------
    latency:
        Distribution of the one-way delivery delay (default: 0 s).
    loss_probability:
        Probability a message silently disappears (default: 0).
    """

    def __init__(
        self,
        latency: Optional[Distribution] = None,
        loss_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        self.latency = latency if latency is not None else Deterministic(0.0)
        self.loss_probability = check_probability(
            loss_probability, "loss_probability"
        )
        # No generator supplied: fall back to a *fixed* seed so a bare
        # SimulatedTransport() is still reproducible (REPRO101).
        self._rng = (
            rng
            if rng is not None
            else spawn_generator(DEFAULT_COMPONENT_SEED)
        )
        self.sent = 0
        self.lost = 0

    def deliver(
        self,
        simulator: Simulator,
        message: object,
        handler: Callable[[object], None],
        extra_delay: float = 0.0,
    ) -> None:
        """Schedule *handler(message)* after transport latency.

        *extra_delay* lets callers add processing time on top of the wire
        latency (e.g. a release's execution time on the response leg).
        Lost messages are counted and never delivered — the receiver's
        timeout is the only way to notice.
        """
        self.sent += 1
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.lost += 1
            return
        delay = self.latency.sample(self._rng) + extra_delay
        simulator.schedule(delay, lambda: handler(message), label="deliver")

    def __repr__(self) -> str:
        return (
            f"SimulatedTransport(latency={self.latency!r}, "
            f"loss={self.loss_probability!r}, sent={self.sent}, "
            f"lost={self.lost})"
        )
