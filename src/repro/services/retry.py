"""Retry against transient failures (paper §2.1).

"Transient failure — a failure triggered by transient conditions which
can be tolerated by using generic recovery techniques such as rollback
and retry even if the same code is used."

:class:`RetryingPort` wraps any port with bounded retry of *evident*
failures (faults and per-attempt timeouts).  Non-evident failures pass
through untouched — by definition retry cannot see them; that is what
the diverse redundancy of the managed upgrade is for.  Composes freely:
a consumer can retry around the upgrade middleware, or the middleware's
endpoints can be wrapped individually.
"""

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.errors import ConfigurationError
from repro.common.validation import check_non_negative
from repro.services.message import (
    RequestMessage,
    ResponseMessage,
    fault_response,
)
from repro.simulation.engine import Simulator


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry configuration.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first (>= 1).
    backoff:
        Fixed delay before each retry (seconds).
    attempt_timeout:
        Per-attempt deadline; an attempt with no response within it is
        abandoned and retried.  None disables per-attempt timeouts (the
        caller's own deadline then governs).
    """

    max_attempts: int = 3
    backoff: float = 0.0
    attempt_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1: {self.max_attempts!r}"
            )
        check_non_negative(self.backoff, "backoff")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ConfigurationError(
                f"attempt_timeout must be > 0: {self.attempt_timeout!r}"
            )


class RetryingPort:
    """Wrap a port with retry of evident failures.

    Delivery guarantee: each :meth:`submit` delivers exactly one
    response.  The *first valid* response wins, whichever attempt
    produced it — an attempt superseded by its own timeout stays live,
    and its late valid response is accepted rather than discarded
    (``late_accepted`` counts these).  Only faults from superseded
    attempts are ignored: the retry they triggered is already running.
    """

    def __init__(self, port, policy: Optional[RetryPolicy] = None):
        self.port = port
        self.policy = policy or RetryPolicy()
        self.attempts = 0
        self.retries = 0
        self.late_accepted = 0

    def submit(
        self,
        simulator: Simulator,
        request: RequestMessage,
        deliver: Callable[[ResponseMessage], None],
        reference_answer: object = None,
    ) -> None:
        state = {"finished": False, "attempt": 0, "timeout_event": None}
        policy = self.policy
        wrapper = self

        def attempt() -> None:
            state["attempt"] += 1
            wrapper.attempts += 1
            attempt_number = state["attempt"]
            timeout_event = None
            if policy.attempt_timeout is not None:
                timeout_event = simulator.schedule(
                    policy.attempt_timeout,
                    lambda: on_attempt_timeout(attempt_number),
                    label=f"retry-timeout:{request.message_id}",
                )
            # The live attempt's timer, so finish() can cancel it: a
            # late-accepted response settles the demand while the newest
            # attempt's timer is still pending in the kernel heap.
            state["timeout_event"] = timeout_event

            def on_response(response: ResponseMessage) -> None:
                if state["finished"]:
                    return
                superseded = state["attempt"] != attempt_number
                if superseded:
                    # The attempt timed out and a retry is in flight, but
                    # the attempt itself was never cancelled: a late
                    # *valid* response still settles the demand (first
                    # valid response across all live attempts wins).  A
                    # late fault carries no new information — the retry
                    # it triggered is already running.
                    if response.is_fault:
                        return
                    wrapper.late_accepted += 1
                    finish(response)
                    return
                if timeout_event is not None:
                    timeout_event.cancel()
                if response.is_fault and (
                    state["attempt"] < policy.max_attempts
                ):
                    retry()
                    return
                finish(response)

            # Fresh message id per attempt (a real client would resend).
            resent = RequestMessage(
                operation=request.operation,
                arguments=request.arguments,
                headers=dict(request.headers),
                reply_to=request.reply_to,
            )
            wrapper.port.submit(
                simulator, resent, on_response,
                reference_answer=reference_answer,
            )

        def on_attempt_timeout(attempt_number: int) -> None:
            if state["finished"] or state["attempt"] != attempt_number:
                return
            if state["attempt"] < policy.max_attempts:
                retry()
            else:
                finish(
                    fault_response(
                        request,
                        f"no response after {policy.max_attempts} "
                        "attempts",
                        "retry",
                    )
                )

        def retry() -> None:
            wrapper.retries += 1
            simulator.schedule(policy.backoff, attempt,
                               label="retry-backoff")

        def finish(response: ResponseMessage) -> None:
            state["finished"] = True
            pending = state["timeout_event"]
            if pending is not None:
                # Cancel the live attempt's outstanding timer (idempotent
                # if it already fired or was cancelled by on_response).
                # Without this, every late-accepted response left a dead
                # timer in the heap — a real leak at millions of requests
                # and a spurious wakeup for any caller sharing the kernel.
                pending.cancel()
                state["timeout_event"] = None
            deliver(response)

        attempt()

    def __repr__(self) -> str:
        return (
            f"RetryingPort(policy={self.policy!r}, "
            f"attempts={self.attempts}, retries={self.retries})"
        )
