"""Upgrade-notification mechanisms (paper §7.2).

The paper lists three ways a consumer (or a managed-upgrade deployment)
can learn that a component WS has a new release:

1. **Registry polling** — the WSDL entry in the registry gains a
   reference to the new release; consumers detect it by comparing the
   release list against what they last saw (:class:`RegistryPoller`).
2. **Notification service** — a separate publish/subscribe channel
   (:class:`NotificationService`), the WS-Notification analogue.
3. **Callbacks** — providers explicitly call back registered consumers
   (:class:`CallbackNotifier`).

All three deliver :class:`UpgradeEvent` records; the upgrade controller
consumes them to start a managed upgrade.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Set

from repro.services.registry import UddiRegistry


@dataclass(frozen=True)
class UpgradeEvent:
    """A detected component upgrade (or rollback).

    ``mechanism`` names how the event was detected (``"registry-poll"``,
    ``"notification-service"``, ``"callback"``) — except for withdrawals,
    where it is ``"rollback"`` and ``new_release`` names the release
    that *disappeared* (the upgrade controller reacts by abandoning any
    managed upgrade targeting it).
    """

    service_name: str
    new_release: str
    mechanism: str

    @property
    def is_rollback(self) -> bool:
        """True when this event reports a withdrawn release."""
        return self.mechanism == "rollback"


UpgradeHandler = Callable[[UpgradeEvent], None]


class RegistryPoller:
    """Detect upgrades by diffing the registry's release lists.

    Call :meth:`poll` periodically (e.g. from a scheduled simulator
    event); newly appeared releases produce events exactly once.
    """

    def __init__(self, registry: UddiRegistry, handler: UpgradeHandler):
        self.registry = registry
        self.handler = handler
        self._seen: Dict[str, Set[str]] = {}
        self.polls = 0

    def poll(self) -> List[UpgradeEvent]:
        """Diff current registry state against the last poll.

        Newly appeared releases emit ``"registry-poll"`` events; releases
        that *disappeared* since the last poll emit ``"rollback"`` events
        (previously only ``releases - known`` was diffed, so a withdrawn
        release was invisible and the upgrade controller kept preparing
        an upgrade to a release that no longer existed).
        """
        self.polls += 1
        events: List[UpgradeEvent] = []
        for name in self.registry.service_names():
            releases = set(self.registry.find(name).release_labels)
            known = self._seen.get(name)
            if known is None:
                # First sighting of the service: baseline, no events.
                self._seen[name] = releases
                continue
            for release in sorted(releases - known):
                event = UpgradeEvent(name, release, "registry-poll")
                events.append(event)
                self.handler(event)
            for release in sorted(known - releases):
                event = UpgradeEvent(name, release, "rollback")
                events.append(event)
                self.handler(event)
            self._seen[name] = releases
        return events


class NotificationService:
    """Publish/subscribe upgrade channel (WS-Notification analogue)."""

    def __init__(self):
        self._subscribers: Dict[str, List[UpgradeHandler]] = {}
        self.published = 0

    def subscribe(self, service_name: str, handler: UpgradeHandler) -> None:
        """Subscribe to upgrade notifications for *service_name*."""
        self._subscribers.setdefault(service_name, []).append(handler)

    def publish_upgrade(self, service_name: str, new_release: str) -> int:
        """Notify all subscribers; returns how many were notified."""
        self.published += 1
        event = UpgradeEvent(service_name, new_release, "notification-service")
        handlers = list(self._subscribers.get(service_name, []))
        for handler in handlers:
            handler(event)
        return len(handlers)

    def publish_rollback(self, service_name: str, release: str) -> int:
        """Notify subscribers that *release* was withdrawn (rolled back)."""
        self.published += 1
        event = UpgradeEvent(service_name, release, "rollback")
        handlers = list(self._subscribers.get(service_name, []))
        for handler in handlers:
            handler(event)
        return len(handlers)

    @classmethod
    def bridged_to(cls, registry: UddiRegistry) -> "NotificationService":
        """A notification service fed automatically by registry events.

        Upgrades are published as upgrade notifications and withdrawals
        as rollback notifications, so subscribers observe mid-campaign
        rollback end to end rather than only the happy path.
        """
        service = cls()

        def on_registry_event(event: str, name: str, release: str) -> None:
            if event == "upgraded":
                service.publish_upgrade(name, release)
            elif event == "withdrawn":
                service.publish_rollback(name, release)

        registry.subscribe(on_registry_event)
        return service


class CallbackNotifier:
    """Provider-side explicit consumer callbacks."""

    def __init__(self, service_name: str):
        self.service_name = service_name
        self._callbacks: List[UpgradeHandler] = []

    def register(self, handler: UpgradeHandler) -> None:
        """A consumer registers its callback with the provider."""
        self._callbacks.append(handler)

    def announce(self, new_release: str) -> int:
        """The provider announces a new release to all registered consumers."""
        event = UpgradeEvent(self.service_name, new_release, "callback")
        for handler in list(self._callbacks):
            handler(event)
        return len(self._callbacks)
