"""Trusted confidence mediator (paper §6.2, last alternative; Fig. 4).

"...a dedicated trusted confidence service functioning as a mediator for
all messages sent to and from the WS.  This mediator can monitor all
messages and express the confidence in a convenient way..."

The :class:`ConfidenceMediator` proxies a port, judges each response it
relays (with a pluggable oracle) and maintains a black-box Bayesian
assessor per operation.  The paper's caveat — confidence goes stale when
traffic bypasses the intermediary — is observable: feed some consumers
directly to the backend and the mediator's demand counts fall behind
(tracked by :attr:`bypass_estimate`).
"""

from typing import Callable, Dict

from repro.bayes.beta import TruncatedBeta
from repro.bayes.blackbox import BlackBoxAssessor
from repro.simulation.engine import Simulator
from repro.services.message import RequestMessage, ResponseMessage

#: Oracle signature: (response, reference_answer) -> True if failed.
ResponseOracle = Callable[[ResponseMessage, object], bool]


def default_oracle(response: ResponseMessage, reference_answer: object) -> bool:
    """Judge a response failed if it faults or mismatches the reference."""
    if response.is_fault:
        return True
    if reference_answer is None:
        return False
    return response.result != reference_answer


class ConfidenceMediator:
    """Third-party proxy measuring and publishing per-operation confidence.

    Parameters
    ----------
    name:
        The mediator's identity (a trusted third party).
    port:
        The backend WS (or middleware) being mediated.
    prior:
        pfd prior used for every operation's black-box assessor.
    target_pfd:
        The pfd target against which confidence is published.
    oracle:
        How the mediator judges correctness; the default compares against
        the demand's reference answer when available and otherwise counts
        only evident faults (which is all a real mediator could see).
    """

    def __init__(
        self,
        name: str,
        port,
        prior: TruncatedBeta,
        target_pfd: float = 1e-3,
        oracle: ResponseOracle = default_oracle,
    ):
        self.name = name
        self.port = port
        self.prior = prior
        self.target_pfd = target_pfd
        self.oracle = oracle
        self._assessors: Dict[str, BlackBoxAssessor] = {}
        self.relayed = 0

    def assessor_for(self, operation: str) -> BlackBoxAssessor:
        """The (lazily created) assessor of one operation."""
        if operation not in self._assessors:
            self._assessors[operation] = BlackBoxAssessor(self.prior)
        return self._assessors[operation]

    # ------------------------------------------------------------------
    # port protocol: relay + monitor
    # ------------------------------------------------------------------

    def submit(
        self,
        simulator: Simulator,
        request: RequestMessage,
        deliver: Callable[[ResponseMessage], None],
        reference_answer: object = None,
    ) -> None:
        self.relayed += 1
        assessor = self.assessor_for(request.operation)

        def monitor(response: ResponseMessage) -> None:
            failed = self.oracle(response, reference_answer)
            assessor.observe(demands=1, failures=1 if failed else 0)
            deliver(response)

        self.port.submit(
            simulator, request, monitor, reference_answer=reference_answer
        )

    # ------------------------------------------------------------------
    # published figures
    # ------------------------------------------------------------------

    def confidence(self, operation: str) -> float:
        """Published P(pfd <= target) for *operation* (usable as a
        :data:`~repro.services.confidence_publishing.ConfidenceSource`)."""
        return self.assessor_for(operation).confidence(self.target_pfd)

    def demands_observed(self, operation: str) -> int:
        """How many demands the mediator has actually seen."""
        return self.assessor_for(operation).demands

    def bypass_estimate(self, operation: str, true_traffic: int) -> float:
        """Fraction of *true_traffic* that bypassed the mediator.

        The paper's stated disadvantage of the mediator solution: if
        significant traffic bypasses it, the published confidence is
        based on a stale, partial view.
        """
        if true_traffic <= 0:
            return 0.0
        seen = self.demands_observed(operation)
        return max(0.0, 1.0 - seen / true_traffic)

    def __repr__(self) -> str:
        return (
            f"ConfidenceMediator(name={self.name!r}, relayed={self.relayed})"
        )
