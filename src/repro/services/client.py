"""Service consumers (requesters).

A :class:`ServiceConsumer` issues requests against any *port* — an object
with a ``submit(simulator, request, deliver)`` method; both the upgrade
middleware and :class:`EndpointPort` (a thin adapter over a single
release) satisfy the protocol.  The consumer applies its own client-side
timeout and keeps simple satisfaction statistics, which the examples use
to show the consumer-visible effect of a managed upgrade.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.common.validation import check_positive
from repro.simulation.engine import Simulator
from repro.services.endpoint import ServiceEndpoint
from repro.services.message import RequestMessage, ResponseMessage


@dataclass
class ConsumerStats:
    """What a consumer experienced over a run."""

    issued: int = 0
    answered: int = 0
    faults: int = 0
    timeouts: int = 0
    response_times: List[float] = field(default_factory=list)

    @property
    def mean_response_time(self) -> float:
        if not self.response_times:
            return float("nan")
        return float(np.mean(self.response_times))


class EndpointPort:
    """Adapter exposing a single release as a consumer port.

    This is the no-middleware baseline: the consumer talks straight to
    one release, as in the single-operational-release scenario (§3.2).
    """

    def __init__(self, endpoint: ServiceEndpoint):
        self.endpoint = endpoint

    def submit(
        self,
        simulator: Simulator,
        request: RequestMessage,
        deliver: Callable[[ResponseMessage], None],
        reference_answer: object = None,
    ) -> None:
        self.endpoint.invoke(
            simulator, request, deliver, reference_answer=reference_answer
        )


class ServiceConsumer:
    """A consumer issuing requests with a client-side timeout.

    Parameters
    ----------
    name:
        Identifier used in logs.
    port:
        Where requests go (middleware, mediator or a bare endpoint port).
    timeout:
        Client-side deadline; a missing response is counted as a timeout.
    """

    def __init__(self, name: str, port, timeout: float = 5.0):
        self.name = name
        self.port = port
        self.timeout = check_positive(timeout, "timeout")
        self.stats = ConsumerStats()
        self._pending: Dict[str, object] = {}

    def issue(
        self,
        simulator: Simulator,
        request: RequestMessage,
        reference_answer: object = None,
        on_response: Optional[Callable[[ResponseMessage], None]] = None,
    ) -> None:
        """Send one request; account for the response or its absence."""
        self.stats.issued += 1
        issued_at = simulator.now

        timeout_event = simulator.schedule(
            self.timeout,
            lambda: self._on_timeout(request.message_id),
            label=f"client-timeout:{request.message_id}",
        )
        self._pending[request.message_id] = timeout_event

        def deliver(response: ResponseMessage) -> None:
            pending = self._pending.pop(request.message_id, None)
            if pending is None:
                return  # response arrived after the client gave up
            pending.cancel()
            self.stats.answered += 1
            if response.is_fault:
                self.stats.faults += 1
            self.stats.response_times.append(simulator.now - issued_at)
            if on_response is not None:
                on_response(response)

        self.port.submit(
            simulator, request, deliver, reference_answer=reference_answer
        )

    def _on_timeout(self, message_id: str) -> None:
        if self._pending.pop(message_id, None) is not None:
            self.stats.timeouts += 1

    def __repr__(self) -> str:
        return (
            f"ServiceConsumer(name={self.name!r}, issued={self.stats.issued}, "
            f"timeouts={self.stats.timeouts})"
        )
