"""SOAP-like message envelopes for the simulated WS substrate.

The paper's architecture moves XML messages (SOAP) between consumers,
middleware and releases.  Our in-process substrate models the same
contract with plain data objects: an envelope with headers (used by the
§6.2 protocol handlers to piggyback confidence) and a body (operation
name + parameters, or a result / fault).
"""

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

_message_ids = itertools.count(1)


def next_message_id() -> str:
    """Allocate a process-unique message identifier."""
    return f"msg-{next(_message_ids)}"


@dataclass(frozen=True)
class RequestMessage:
    """A consumer-to-service invocation envelope.

    Attributes
    ----------
    operation:
        Name of the WSDL operation invoked (e.g. ``"operation1"``).
    arguments:
        Positional operation parameters.
    headers:
        SOAP-header analogue; protocol handlers may add entries.
    message_id:
        Unique id used to correlate responses.
    reply_to:
        Logical address of the consumer (for logging/tracing only).
    """

    operation: str
    arguments: Tuple = ()
    headers: Dict[str, object] = field(default_factory=dict)
    message_id: str = field(default_factory=next_message_id)
    reply_to: str = "consumer"

    def with_header(self, key: str, value: object) -> "RequestMessage":
        """Return a copy with one extra header (messages are immutable)."""
        headers = dict(self.headers)
        headers[key] = value
        return replace(self, headers=headers)


@dataclass(frozen=True)
class ResponseMessage:
    """A service-to-consumer response envelope.

    ``fault`` is None for successful responses; a fault code string for
    evident failures (the SOAP-fault analogue).  A *non-evident* failure
    is, by definition, indistinguishable from success at this level: it is
    a normal-looking response whose ``result`` is wrong.
    """

    in_reply_to: str
    operation: str
    result: object = None
    fault: Optional[str] = None
    headers: Dict[str, object] = field(default_factory=dict)
    responder: str = ""
    message_id: str = field(default_factory=next_message_id)

    @property
    def is_fault(self) -> bool:
        """True if this response is an evident (declared) failure."""
        return self.fault is not None

    def with_header(self, key: str, value: object) -> "ResponseMessage":
        """Return a copy with one extra header."""
        headers = dict(self.headers)
        headers[key] = value
        return replace(self, headers=headers)


def fault_response(
    request: RequestMessage, fault: str, responder: str = ""
) -> ResponseMessage:
    """Build an evident-failure response to *request*."""
    return ResponseMessage(
        in_reply_to=request.message_id,
        operation=request.operation,
        result=None,
        fault=fault,
        responder=responder,
    )


def result_response(
    request: RequestMessage, result: object, responder: str = ""
) -> ResponseMessage:
    """Build a normal response to *request* carrying *result*."""
    return ResponseMessage(
        in_reply_to=request.message_id,
        operation=request.operation,
        result=result,
        responder=responder,
    )
