"""Protocol handlers that piggyback confidence on message headers (§6.2).

"...uses protocol handlers on the service and client sides to
transparently add/remove additional information describing confidence
to/from each XML message sent between the WS and clients."

:class:`ServiceSideHandler` wraps a port and stamps every outgoing
response header with the current confidence; :class:`ClientSideHandler`
strips the header and hands it to an application callback.  If the client
handler is absent the application still functions — the header is simply
ignored — which is exactly the compatibility property the paper claims
for this solution.
"""

from typing import Callable, Optional

from repro.simulation.engine import Simulator
from repro.services.confidence_publishing import ConfidenceSource
from repro.services.message import RequestMessage, ResponseMessage
from repro.services.wsdl import CONFIDENCE_HEADER


class ServiceSideHandler:
    """Adds a confidence header to every response leaving the service."""

    def __init__(self, port, source: ConfidenceSource):
        self.port = port
        self.source = source
        self.stamped = 0

    def submit(
        self,
        simulator: Simulator,
        request: RequestMessage,
        deliver: Callable[[ResponseMessage], None],
        reference_answer: object = None,
    ) -> None:
        def stamp(response: ResponseMessage) -> None:
            self.stamped += 1
            deliver(
                response.with_header(
                    CONFIDENCE_HEADER, self.source(response.operation)
                )
            )

        self.port.submit(
            simulator, request, stamp, reference_answer=reference_answer
        )


class ClientSideHandler:
    """Strips the confidence header before the application sees a response.

    Parameters
    ----------
    port:
        The downstream port (typically a :class:`ServiceSideHandler`-
        wrapped service, but works against any port).
    on_confidence:
        Called with ``(operation, confidence)`` whenever a response
        carried the header; None just discards it.
    """

    def __init__(
        self,
        port,
        on_confidence: Optional[Callable[[str, float], None]] = None,
    ):
        self.port = port
        self.on_confidence = on_confidence
        self.last_confidence: Optional[float] = None

    def submit(
        self,
        simulator: Simulator,
        request: RequestMessage,
        deliver: Callable[[ResponseMessage], None],
        reference_answer: object = None,
    ) -> None:
        def strip(response: ResponseMessage) -> None:
            confidence = response.headers.get(CONFIDENCE_HEADER)
            if confidence is not None:
                self.last_confidence = float(confidence)
                if self.on_confidence is not None:
                    self.on_confidence(response.operation, float(confidence))
                headers = {
                    k: v
                    for k, v in response.headers.items()
                    if k != CONFIDENCE_HEADER
                }
                response = ResponseMessage(
                    in_reply_to=response.in_reply_to,
                    operation=response.operation,
                    result=response.result,
                    fault=response.fault,
                    headers=headers,
                    responder=response.responder,
                )
            deliver(response)

        self.port.submit(
            simulator, request, strip, reference_answer=reference_answer
        )
