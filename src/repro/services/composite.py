"""Composite Web Services (paper Fig. 1 / Fig. 4).

A composite WS publishes its own interface and implements it by
orchestrating *component* services (third-party WSs it depends on).  The
orchestration plan is an explicit sequence of steps; the glue code that
combines component results is a plain function — the "design of the
composition and its implementation, i.e. the 'glue' code" whose
dependability §2.2 says also contributes to the composite confidence.

Component ports may be bare endpoints, upgrade middleware instances or
mediators — anything with the ``submit`` protocol — so deploying the
managed upgrade *inside* a composite WS (Fig. 4) is just a port choice.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from repro.common.errors import ConfigurationError
from repro.simulation.engine import Simulator
from repro.services.message import (
    RequestMessage,
    ResponseMessage,
    fault_response,
    result_response,
)
from repro.services.wsdl import WsdlDescription


@dataclass(frozen=True)
class OrchestrationStep:
    """One component invocation within the composite's workflow.

    Attributes
    ----------
    component:
        Key of the component port to invoke.
    operation:
        Operation to call on the component.
    build_arguments:
        Maps (composite request, results-so-far) to the step's arguments.
    derive_reference:
        Maps (composite request, composite-level reference answer) to the
        reference answer for *this step's* component invocation.  The
        composite-level reference describes the composite result, not any
        component's — forwarding it verbatim made a mediator or
        middleware wrapped around a component judge component responses
        against the wrong oracle and mis-score pfd.  The default derives
        ``None`` (no per-step oracle: only evident faults are judged).
    """

    component: str
    operation: str
    build_arguments: Callable[[RequestMessage, Dict[str, object]], tuple] = (
        lambda request, results: request.arguments
    )
    derive_reference: Callable[[RequestMessage, object], object] = (
        lambda request, reference_answer: None
    )


class CompositeService:
    """A composite WS orchestrating component services sequentially.

    Parameters
    ----------
    wsdl:
        The composite's own published description.
    components:
        Mapping of component key -> port (``submit`` protocol).
    plan:
        The orchestration steps, executed in order; a component fault
        aborts the workflow with a composite fault (no FT in the glue —
        fault tolerance belongs to the per-component middleware).
    combine:
        Glue combining the per-step results into the composite result.
    """

    def __init__(
        self,
        wsdl: WsdlDescription,
        components: Dict[str, object],
        plan: Sequence[OrchestrationStep],
        combine: Callable[[Dict[str, object]], object],
    ):
        if not plan:
            raise ConfigurationError("orchestration plan is empty")
        unknown = [s.component for s in plan if s.component not in components]
        if unknown:
            raise ConfigurationError(
                f"plan references unknown components: {unknown!r}"
            )
        self.wsdl = wsdl
        self.components = dict(components)
        self.plan = list(plan)
        self.combine = combine
        self.served = 0
        self.composite_faults = 0

    # The composite itself satisfies the port protocol, so composites can
    # nest (a composite WS can be a component of another composite WS).
    def submit(
        self,
        simulator: Simulator,
        request: RequestMessage,
        deliver: Callable[[ResponseMessage], None],
        reference_answer: object = None,
    ) -> None:
        """Serve one composite request by running the orchestration plan."""
        self.served += 1
        results: Dict[str, object] = {}
        steps = iter(enumerate(self.plan))
        composite = self

        def run_next() -> None:
            try:
                index, step = next(steps)
            except StopIteration:
                deliver(
                    result_response(
                        request,
                        composite.combine(results),
                        composite.wsdl.service_name,
                    )
                )
                return
            port = composite.components[step.component]
            sub_request = RequestMessage(
                operation=step.operation,
                arguments=step.build_arguments(request, results),
                reply_to=composite.wsdl.service_name,
            )

            def on_component_response(response: ResponseMessage) -> None:
                if response.is_fault:
                    composite.composite_faults += 1
                    deliver(
                        fault_response(
                            request,
                            f"component {step.component!r} failed: "
                            f"{response.fault}",
                            composite.wsdl.service_name,
                        )
                    )
                    return
                results[f"{step.component}:{index}"] = response.result
                run_next()

            port.submit(
                simulator,
                sub_request,
                on_component_response,
                reference_answer=step.derive_reference(
                    request, reference_answer
                ),
            )

        run_next()

    def __repr__(self) -> str:
        return (
            f"CompositeService(name={self.wsdl.service_name!r}, "
            f"components={sorted(self.components)!r}, served={self.served})"
        )
