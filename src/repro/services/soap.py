"""SOAP 1.2 envelope rendering for the message analogues.

The in-process substrate moves :class:`~repro.services.message.
RequestMessage` / :class:`~repro.services.message.ResponseMessage`
objects; this module renders them as SOAP envelopes (and parses them
back), so examples and tests can show the wire-level artefacts the
paper's §6.2 discussion is about — in particular how the protocol
handlers' confidence header and the response-extension option actually
look on the wire.

The renderer covers the subset the substrate uses: positional parameters
of int/float/str/bool, fault bodies, and string/float headers.  It is a
faithful *shape* of SOAP 1.2, not a general implementation.
"""

import re
from typing import Dict, List, Tuple
from xml.sax.saxutils import escape, unescape

from repro.common.errors import ServiceError
from repro.services.message import RequestMessage, ResponseMessage

ENVELOPE_NS = "http://www.w3.org/2003/05/soap-envelope"
HEADER_NS = "urn:repro:confidence"


def _render_headers(headers: Dict[str, object]) -> str:
    if not headers:
        return "  <env:Header/>"
    lines = ["  <env:Header>"]
    for key, value in sorted(headers.items()):
        tag = escape(str(key))
        lines.append(
            f'    <conf:{tag} xmlns:conf="{HEADER_NS}">'
            f"{escape(str(value))}</conf:{tag}>"
        )
    lines.append("  </env:Header>")
    return "\n".join(lines)


def _render_value(value: object) -> Tuple[str, str]:
    """(xsi type, text) for one parameter value."""
    if isinstance(value, bool):
        return "xsd:boolean", "true" if value else "false"
    if isinstance(value, int):
        return "xsd:int", str(value)
    if isinstance(value, float):
        return "xsd:double", repr(value)
    return "xsd:string", escape(str(value))


def _parse_value(xsi_type: str, text: str) -> object:
    if xsi_type == "xsd:int":
        return int(text)
    if xsi_type == "xsd:double":
        return float(text)
    if xsi_type == "xsd:boolean":
        return text == "true"
    return unescape(text)


def render_request(request: RequestMessage) -> str:
    """Render a request as a SOAP 1.2 envelope."""
    params = []
    for index, argument in enumerate(request.arguments):
        xsi, text = _render_value(argument)
        params.append(
            f'      <param{index} xsi:type="{xsi}">{text}</param{index}>'
        )
    body = "\n".join(params)
    return (
        f'<?xml version="1.0"?>\n'
        f'<env:Envelope xmlns:env="{ENVELOPE_NS}"\n'
        f'              xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"\n'
        f'              xmlns:xsd="http://www.w3.org/2001/XMLSchema">\n'
        f"{_render_headers(request.headers)}\n"
        f"  <env:Body>\n"
        f'    <m:{request.operation} xmlns:m="urn:repro:service"\n'
        f'       messageId="{escape(request.message_id)}"\n'
        f'       replyTo="{escape(request.reply_to)}">\n'
        f"{body}\n"
        f"    </m:{request.operation}>\n"
        f"  </env:Body>\n"
        f"</env:Envelope>"
    )


def render_response(response: ResponseMessage) -> str:
    """Render a response (or SOAP fault) as a SOAP 1.2 envelope."""
    if response.is_fault:
        body = (
            f"    <env:Fault>\n"
            f"      <env:Code><env:Value>env:Receiver</env:Value>"
            f"</env:Code>\n"
            f"      <env:Reason><env:Text>{escape(response.fault)}"
            f"</env:Text></env:Reason>\n"
            f"    </env:Fault>"
        )
    else:
        xsi, text = _render_value(response.result)
        body = (
            f'    <m:{response.operation}Response '
            f'xmlns:m="urn:repro:service"\n'
            f'       inReplyTo="{escape(response.in_reply_to)}"\n'
            f'       responder="{escape(response.responder)}">\n'
            f'      <result xsi:type="{xsi}">{text}</result>\n'
            f"    </m:{response.operation}Response>"
        )
    return (
        f'<?xml version="1.0"?>\n'
        f'<env:Envelope xmlns:env="{ENVELOPE_NS}"\n'
        f'              xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"\n'
        f'              xmlns:xsd="http://www.w3.org/2001/XMLSchema">\n'
        f"{_render_headers(response.headers)}\n"
        f"  <env:Body>\n"
        f"{body}\n"
        f"  </env:Body>\n"
        f"</env:Envelope>"
    )


_REQUEST_RE = re.compile(
    r'<m:(?P<op>[\w]+) xmlns:m="urn:repro:service"\s*'
    r'messageId="(?P<mid>[^"]*)"\s*replyTo="(?P<reply>[^"]*)">',
)
_PARAM_RE = re.compile(
    r'<param(?P<idx>\d+) xsi:type="(?P<type>[\w:]+)">(?P<text>.*?)'
    r"</param(?P=idx)>",
    re.S,
)
_HEADER_RE = re.compile(
    rf'<conf:(?P<key>[\w-]+) xmlns:conf="{HEADER_NS}">(?P<value>.*?)'
    r"</conf:(?P=key)>",
    re.S,
)


def parse_request(envelope: str) -> RequestMessage:
    """Parse a rendered request envelope back into a message object.

    Round-trips everything :func:`render_request` emits; raises
    :class:`ServiceError` on anything else.
    """
    match = _REQUEST_RE.search(envelope)
    if match is None:
        raise ServiceError("not a repro SOAP request envelope")
    arguments: List[object] = []
    for param in _PARAM_RE.finditer(envelope):
        arguments.append(
            _parse_value(param.group("type"), param.group("text"))
        )
    headers: Dict[str, object] = {}
    for header in _HEADER_RE.finditer(envelope):
        headers[header.group("key")] = unescape(header.group("value"))
    return RequestMessage(
        operation=match.group("op"),
        arguments=tuple(arguments),
        headers=headers,
        message_id=unescape(match.group("mid")),
        reply_to=unescape(match.group("reply")),
    )
