"""Deployed service releases (endpoints) on the discrete-event kernel.

A :class:`ServiceEndpoint` is one operational release of a WS: it owns a
WSDL description, a stochastic :class:`~repro.simulation.release_model.
ReleaseBehaviour`, and an online/offline flag (driven by the fault
injector).  The upgrade middleware invokes endpoints directly; standalone
consumers can too.

The execution time of a response is ``demand_difficulty + T2`` where the
caller supplies the demand-difficulty component ``T1`` (shared across
releases on the same demand, eq. 7) and the endpoint samples its own
``T2`` from its latency law.
"""

import math
from typing import Callable, Optional

import numpy as np

from repro.simulation.engine import Simulator
from repro.simulation.outcomes import Outcome
from repro.simulation.release_model import ReleaseBehaviour
from repro.services.message import (
    RequestMessage,
    ResponseMessage,
    fault_response,
    result_response,
)
from repro.services.wsdl import WsdlDescription

ResponseHandler = Callable[[ResponseMessage], None]


class ServiceEndpoint:
    """One operational release of a Web Service.

    Example
    -------
    >>> from repro.simulation import Exponential
    >>> from repro.simulation.correlation import OutcomeDistribution
    >>> from repro.services.wsdl import default_wsdl
    >>> rng = np.random.default_rng(0)
    >>> behaviour = ReleaseBehaviour(
    ...     "WS 1.0",
    ...     OutcomeDistribution(0.9, 0.05, 0.05),
    ...     Exponential(0.7),
    ... )
    >>> endpoint = ServiceEndpoint(default_wsdl("WS", "node-1"), behaviour, rng)
    """

    def __init__(
        self,
        wsdl: WsdlDescription,
        behaviour: ReleaseBehaviour,
        rng: np.random.Generator,
    ):
        self.wsdl = wsdl
        self.behaviour = behaviour
        self._rng = rng
        self.online = True
        self.invocations = 0
        self.responses = 0
        self._name_cache = None

    @property
    def name(self) -> str:
        """Display name, e.g. ``"Web-Service 1.0"``.

        Cached against the current WSDL object: the name is read on every
        response/observation (hot path), while the WSDL practically never
        changes after construction.
        """
        wsdl = self.wsdl
        cached = self._name_cache
        if cached is None or cached[0] is not wsdl:
            cached = (wsdl, f"{wsdl.service_name} {wsdl.release}")
            self._name_cache = cached
        return cached[1]

    @property
    def release(self) -> str:
        return self.wsdl.release

    # ------------------------------------------------------------------
    # administrative control (used by the fault injector & management)
    # ------------------------------------------------------------------

    def take_offline(self) -> None:
        """Stop responding to new invocations (denial of service)."""
        self.online = False

    def bring_online(self) -> None:
        """Resume responding."""
        self.online = True

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------

    def invoke(
        self,
        simulator: Simulator,
        request: RequestMessage,
        deliver: ResponseHandler,
        reference_answer: object = None,
        forced_outcome: Optional[Outcome] = None,
        demand_difficulty: float = 0.0,
    ) -> None:
        """Process *request*, delivering the response asynchronously.

        Parameters
        ----------
        simulator:
            The discrete-event kernel driving the run.
        request:
            The consumer's (or middleware's) request envelope.
        deliver:
            Called with the :class:`ResponseMessage` once the sampled
            execution time has elapsed.  Never called while offline —
            the caller's timeout is the only detection mechanism, as for
            a real unreachable WS.
        reference_answer:
            Ground-truth result for this demand (simulation oracle input).
        forced_outcome:
            Pre-sampled outcome imposed by the middleware's correlated
            joint outcome model; None samples this release's marginal.
        demand_difficulty:
            The shared T1 execution-time component of eq. (7).
        """
        self.invocations += 1
        if not self.online:
            return
        if not self.wsdl.has_operation(request.operation):
            # Unknown operation: an immediate, evident fault.
            response = fault_response(
                request, f"unknown operation {request.operation!r}", self.name
            )
            simulator.schedule(0.0, lambda: self._finish(deliver, response))
            return
        simulated = self.behaviour.sample_response(
            self._rng,
            reference_answer=reference_answer,
            forced_outcome=forced_outcome,
        )
        execution_time = demand_difficulty + simulated.execution_time
        if not math.isfinite(execution_time):
            # An infinite latency models a hang / lost response: nothing is
            # ever delivered and the caller's timeout is the only signal.
            return
        if simulated.outcome is Outcome.EVIDENT_FAILURE:
            response = fault_response(request, "internal error", self.name)
        else:
            response = result_response(request, simulated.payload, self.name)
        simulator.schedule(
            execution_time,
            lambda: self._finish(deliver, response),
            label=f"response:{self.name}",
        )

    def _finish(self, deliver: ResponseHandler, response: ResponseMessage) -> None:
        self.responses += 1
        deliver(response)

    def __repr__(self) -> str:
        state = "online" if self.online else "OFFLINE"
        return (
            f"ServiceEndpoint(name={self.name!r}, {state}, "
            f"invocations={self.invocations})"
        )
