"""Simulated Web-Service substrate (WSDL / UDDI / SOAP analogues).

Everything the paper's architecture assumes from the WS world, rebuilt
in-process:

* :mod:`repro.services.message` — SOAP-like envelopes;
* :mod:`repro.services.wsdl` — WSDL-like descriptions with the §6.2
  confidence-publishing schema transforms;
* :mod:`repro.services.registry` — UDDI-like registry with upgrade
  events and published confidence;
* :mod:`repro.services.endpoint` — deployed releases on the event kernel;
* :mod:`repro.services.transport` — lossy/latent message channels;
* :mod:`repro.services.client` — consumers with client-side timeouts;
* :mod:`repro.services.composite` — composite WS orchestration;
* :mod:`repro.services.faults` — failure-mode injection (§2.1);
* :mod:`repro.services.notification` — the §7.2 upgrade-notification
  mechanisms;
* :mod:`repro.services.confidence_publishing`, :mod:`repro.services.
  handlers`, :mod:`repro.services.mediator` — the §6.2 strategies for
  publishing confidence.
"""

from repro.services.message import (
    RequestMessage,
    ResponseMessage,
    fault_response,
    result_response,
)
from repro.services.wsdl import (
    OperationSpec,
    Parameter,
    WsdlDescription,
    default_wsdl,
)
from repro.services.registry import RegistryEntry, UddiRegistry
from repro.services.endpoint import ServiceEndpoint
from repro.services.transport import SimulatedTransport
from repro.services.client import ConsumerStats, EndpointPort, ServiceConsumer
from repro.services.composite import CompositeService, OrchestrationStep
from repro.services.faults import (
    DowntimeInjector,
    RegressionInjector,
    TransientBurstInjector,
)
from repro.services.notification import (
    CallbackNotifier,
    NotificationService,
    RegistryPoller,
    UpgradeEvent,
)
from repro.services.confidence_publishing import (
    ConfidenceOperationPublisher,
    ConfidentVariantPublisher,
    ResponseExtensionPublisher,
    StaticConfidenceSource,
)
from repro.services.handlers import ClientSideHandler, ServiceSideHandler
from repro.services.mediator import ConfidenceMediator
from repro.services.retry import RetryPolicy, RetryingPort
from repro.services.soap import (
    parse_request,
    render_request,
    render_response,
)

__all__ = [
    "RequestMessage",
    "ResponseMessage",
    "fault_response",
    "result_response",
    "OperationSpec",
    "Parameter",
    "WsdlDescription",
    "default_wsdl",
    "RegistryEntry",
    "UddiRegistry",
    "ServiceEndpoint",
    "SimulatedTransport",
    "ConsumerStats",
    "EndpointPort",
    "ServiceConsumer",
    "CompositeService",
    "OrchestrationStep",
    "DowntimeInjector",
    "RegressionInjector",
    "TransientBurstInjector",
    "CallbackNotifier",
    "NotificationService",
    "RegistryPoller",
    "UpgradeEvent",
    "ConfidenceOperationPublisher",
    "ConfidentVariantPublisher",
    "ResponseExtensionPublisher",
    "StaticConfidenceSource",
    "ClientSideHandler",
    "ServiceSideHandler",
    "ConfidenceMediator",
    "RetryPolicy",
    "RetryingPort",
    "parse_request",
    "render_request",
    "render_response",
]
