"""The managed-upgrade middleware on the asyncio substrate.

:class:`AsyncUpgradeMiddleware` serves the same four operating modes as
:class:`~repro.core.middleware.UpgradeMiddleware` — parallel
max-reliability, parallel max-responsiveness, parallel-dynamic and
sequential — over coroutine endpoints instead of kernel callbacks.
Message types, fault models, adjudication rules and the Table-5/6
observation schema are shared with the sync substrate; only the
execution machinery differs.

Determinism model
-----------------

The event kernel is deterministic because a single heap orders every
callback.  asyncio offers no such guarantee once demands overlap, so the
async middleware moves every random draw *out of execution order*:

* a :class:`~repro.runtime.sampling.DemandScript` pre-draws T1, per-
  release T2 and the joint outcome matrix, indexed by **demand index** —
  whichever worker serves demand *i*, it reads row *i*;
* adjudication tie-breaks draw from a per-demand generator derived from
  ``(adjudication_seed, demand index)`` via
  :class:`~repro.common.seeding.SeedSequenceFactory` — order-
  independent, and materialized lazily because the paper's rules only
  draw on disagreeing valid results;
* collection is decided by pure duration arithmetic (``d < budget``,
  strict — the kernel's timeout-wins tie rule) rather than by observing
  the clock, so the decision is identical under any concurrency limit
  and on either clock.

The one knowing deviation from the kernel: a shared adjudication stream
would re-introduce completion-order coupling, so tie-break draws come
from per-demand streams.  Demands whose adjudication actually consumes
randomness (two *disagreeing* valid results — max-reliability mode
only) may therefore resolve the CR/NER split differently than the
kernel run; every other Table-5/6 figure is bit-identical.  The
service_load experiment's cross-check encodes exactly this tolerance.
"""

import asyncio
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, ValidationError
from repro.common.seeding import SeedSequenceFactory
from repro.core.adjudicators import (
    Adjudication,
    Adjudicator,
    CollectedResponse,
    PaperRuleAdjudicator,
)
from repro.core.middleware import UpgradeMiddleware
from repro.core.modes import ModeConfig, OperatingMode, SequentialOrder
from repro.core.monitor import MonitoringSubsystem
from repro.runtime.sampling import DemandScript
from repro.services.aio.clock import checked_sleep
from repro.services.aio.endpoint import AsyncEndpoint
from repro.services.message import RequestMessage, ResponseMessage
from repro.simulation.correlation import JointOutcomeModel
from repro.simulation.distributions import Deterministic, Distribution
from repro.simulation.outcomes import OUTCOME_ORDER, Outcome
from repro.simulation.timing import SystemTimingPolicy


class _LazyGenerator:
    """A generator materialized on first use.

    Adjudication needs randomness only when valid results disagree; at
    realistic failure rates that is a tiny fraction of demands, and
    spinning up a PCG64 per demand would dominate the load loop.  The
    proxy defers construction until (unless) a method is actually
    called.
    """

    __slots__ = ("_make", "_rng")

    def __init__(self, make):
        self._make = make
        self._rng = None

    def __getattr__(self, name):
        if self._rng is None:
            self._rng = self._make()
        return getattr(self._rng, name)


@dataclass(frozen=True)
class ReleaseSummary:
    """One release's contribution to one demand, reduction-ready.

    Mirrors :class:`~repro.core.database.ReleaseObservation` but carries
    the *true* outcome only — the streaming reducer feeds
    :class:`~repro.simulation.metrics.ReleaseMetrics` exactly the way
    ``metrics_from_log`` does, without holding a log.
    """

    name: str
    invoked: bool
    collected: bool
    outcome: Optional[Outcome] = None
    execution_time: Optional[float] = None


@dataclass(frozen=True)
class DemandSummary:
    """One demand's full Table-5/6 observation row."""

    index: int
    releases: Tuple[ReleaseSummary, ...]
    system_verdict: str
    system_outcome: Optional[Outcome]
    system_time: float


@dataclass(frozen=True)
class AsyncDemandReport:
    """Everything the middleware decided about one demand."""

    response: ResponseMessage
    collected: List[CollectedResponse]
    adjudication: Adjudication
    system_time: float
    summary: DemandSummary
    demand_index: int
    invoked_names: Optional[List[str]] = None


class AsyncUpgradeMiddleware:
    """Managed-upgrade middleware over N releases, served by coroutines.

    Parameters
    ----------
    endpoints:
        Deployed :class:`~repro.services.aio.endpoint.AsyncEndpoint`
        releases, old release first by convention.
    timing:
        TimeOut + adjudication delay (eq. 8).
    adjudication_seed:
        Root of the per-demand tie-break streams (see module docstring).
    script:
        Optional pre-drawn randomness.  With a script the middleware is
        deterministic under any concurrency; without one it needs *rng*
        and draws per demand in completion order (wall-clock load runs).
    budgets:
        Optional per-release collection windows (name -> seconds)
        overriding the TimeOut for individual releases — the knob the
        upgrade manager uses to shorten the window of a release under
        suspicion.  Collection still never extends past the TimeOut.
    max_inflight:
        Optional cap on concurrently served demands (an
        ``asyncio.Semaphore``); arrivals beyond it wait their turn.
        This is the middleware's own backpressure, inside whatever
        queueing the load harness adds.
    """

    def __init__(
        self,
        endpoints: List[AsyncEndpoint],
        timing: SystemTimingPolicy,
        *,
        adjudication_seed: int,
        adjudicator: Optional[Adjudicator] = None,
        mode: Optional[ModeConfig] = None,
        monitor: Optional[MonitoringSubsystem] = None,
        rng: Optional[np.random.Generator] = None,
        demand_difficulty: Optional[Distribution] = None,
        joint_outcome_model: Optional[JointOutcomeModel] = None,
        script: Optional[DemandScript] = None,
        budgets: Optional[Dict[str, float]] = None,
        max_inflight: Optional[int] = None,
    ):
        if not endpoints:
            raise ConfigurationError("middleware needs at least one release")
        self.endpoints: List[AsyncEndpoint] = list(endpoints)
        self.timing = timing
        self.adjudicator = adjudicator or PaperRuleAdjudicator()
        self.mode = mode or ModeConfig.max_reliability()
        self.monitor = monitor
        self.joint_outcome_model = joint_outcome_model
        self.demand_difficulty = (
            demand_difficulty
            if demand_difficulty is not None
            else Deterministic(0.0)
        )
        self._rng = rng
        self.script = script
        self.budgets = dict(budgets) if budgets else {}
        self._seed_factory = SeedSequenceFactory(adjudication_seed)
        self._semaphore = (
            asyncio.Semaphore(max_inflight)
            if max_inflight is not None
            else None
        )
        self.demands = 0
        self._live_index = itertools.count()
        self._seq_rows_cache: Optional[tuple] = None
        # Script columns are positional: release k reads t2[k] /
        # outcome_codes[:, k].  Frozen at construction — a scripted
        # middleware cannot be reconfigured mid-run (the script has no
        # column for a release it never knew).
        self._script_columns: Dict[str, int] = {
            endpoint.name: k for k, endpoint in enumerate(self.endpoints)
        }

    # ------------------------------------------------------------------
    # reconfiguration (driven by the management subsystem)
    # ------------------------------------------------------------------

    def release_names(self) -> List[str]:
        return [endpoint.name for endpoint in self.endpoints]

    def add_endpoint(self, endpoint: AsyncEndpoint) -> None:
        """Deploy an additional release behind the interface."""
        if self.script is not None:
            raise ConfigurationError(
                "a scripted middleware cannot be reconfigured: the "
                "demand script has no column for a new release"
            )
        if endpoint.name in self.release_names():
            raise ConfigurationError(
                f"release {endpoint.name!r} is already deployed"
            )
        self.endpoints.append(endpoint)

    def remove_endpoint(self, name: str) -> AsyncEndpoint:
        """Phase a release out; raises if it is the last one."""
        if len(self.endpoints) == 1:
            raise ConfigurationError("cannot remove the last release")
        for i, endpoint in enumerate(self.endpoints):
            if endpoint.name == name:
                return self.endpoints.pop(i)
        raise ConfigurationError(f"no deployed release named {name!r}")

    def set_mode(self, mode: ModeConfig) -> None:
        """Switch operating mode (takes effect on the next demand)."""
        self.mode = mode

    def set_budget(self, name: str, window: Optional[float]) -> None:
        """Set (or clear, with None) one release's collection window."""
        if window is None:
            self.budgets.pop(name, None)
        else:
            self.budgets[name] = window

    # ------------------------------------------------------------------
    # the async port protocol
    # ------------------------------------------------------------------

    async def call(
        self,
        request: RequestMessage,
        *,
        reference_answer: object = None,
        demand_index: Optional[int] = None,
    ) -> ResponseMessage:
        """Serve one demand; resolves to exactly one response."""
        report = await self.call_detailed(
            request,
            reference_answer=reference_answer,
            demand_index=demand_index,
        )
        return report.response

    async def call_detailed(
        self,
        request: RequestMessage,
        *,
        reference_answer: object = None,
        demand_index: Optional[int] = None,
    ) -> AsyncDemandReport:
        """Serve one demand and return the full observation report."""
        if self._semaphore is None:
            return await self._serve(request, reference_answer, demand_index)
        async with self._semaphore:
            return await self._serve(request, reference_answer, demand_index)

    # ------------------------------------------------------------------
    # demand machinery
    # ------------------------------------------------------------------

    def _tie_rng(self, index: int) -> _LazyGenerator:
        return _LazyGenerator(
            lambda: self._seed_factory.generator(f"demand/{index}")
        )

    def _require_rng(self) -> np.random.Generator:
        if self._rng is None:
            raise ConfigurationError(
                "unscripted middleware needs an rng for per-demand draws"
            )
        return self._rng

    def _demand_inputs(
        self, index: int, active: List[AsyncEndpoint]
    ) -> Tuple[float, Dict[str, float], Dict[str, Outcome]]:
        """(T1, per-release T2, per-release forced outcome) for demand
        *index* — from the script when there is one, live draws
        otherwise (live T2/outcomes are left to the endpoints)."""
        if self.script is not None:
            difficulty = float(self.script.t1[index])
            t2s: Dict[str, float] = {}
            forced: Dict[str, Outcome] = {}
            codes = self.script.outcome_codes
            for endpoint in active:
                k = self._script_columns[endpoint.name]
                t2s[endpoint.name] = float(self.script.t2[k][index])
                if codes is not None:
                    forced[endpoint.name] = OUTCOME_ORDER[
                        int(codes[index, k])
                    ]
            return difficulty, t2s, forced
        # Live draws: a degenerate difficulty law needs no generator, so
        # an unscripted middleware whose endpoints own all randomness
        # (the common test/demo shape) works without one.
        if isinstance(self.demand_difficulty, Deterministic):
            difficulty = self.demand_difficulty.mean
        else:
            difficulty = float(
                self.demand_difficulty.sample(self._require_rng())
            )
        forced = {}
        if self.joint_outcome_model is not None and len(active) >= 2:
            try:
                outcomes = self.joint_outcome_model.sample_tuple(
                    self._require_rng(), len(active)
                )
            except ValidationError:
                # The model cannot correlate this many releases:
                # endpoints fall back to their own marginals.
                outcomes = None
            if outcomes is not None:
                forced = {
                    endpoint.name: outcome
                    for endpoint, outcome in zip(active, outcomes)
                }
        return difficulty, {}, forced

    def _budget(self, name: str, timeout: float) -> float:
        return min(timeout, self.budgets.get(name, timeout))

    def _sequential_consumption(
        self, timeout: float
    ) -> Optional[List[np.ndarray]]:
        """Per-release script-row indices for fixed-order sequential mode.

        The kernel's scripted latency distributions are consumed *per
        invocation*: in sequential mode release k's next T2 row is read
        only when the demand escalates to it, so demand *i* reads row
        ``j = #(earlier demands that invoked release k)`` — not row
        *i*.  Each escalation decision is a pure function of the
        script, so the whole mapping is one vectorized prefix scan,
        computed once and cached.  Returns None when the script has no
        outcome matrix (escalations then depend on live draws and the
        mapping is unknowable ahead of time).
        """
        script = self.script
        assert script is not None
        codes = script.outcome_codes
        if codes is None:
            return None
        key = (timeout, tuple(sorted(self.budgets.items())))
        if self._seq_rows_cache is not None:
            cached_key, cached_rows = self._seq_rows_cache
            if cached_key == key:
                return cached_rows
        evident = OUTCOME_ORDER.index(Outcome.EVIDENT_FAILURE)
        requests = len(script.t1)
        t1 = script.t1
        rows: List[np.ndarray] = []
        invoked = np.ones(requests, dtype=bool)
        cumulative = np.zeros(requests, dtype=np.float64)
        for k, endpoint in enumerate(self.endpoints):
            j = np.cumsum(invoked) - invoked  # exclusive prefix count
            rows.append(np.where(invoked, j, -1))
            t2 = script.t2[k][np.where(invoked, j, 0)]
            d = t1 + t2
            arrival = cumulative + d
            # Collected iff it lands strictly inside both the demand's
            # remaining TimeOut window and the release's own budget.
            budget = self._budget(endpoint.name, timeout)
            collected = invoked & (arrival < timeout) & (d < budget)
            escalates = collected & (codes[:, k] == evident)
            cumulative = np.where(escalates, arrival, cumulative)
            invoked = escalates
        self._seq_rows_cache = (key, rows)
        return rows

    async def _serve(
        self,
        request: RequestMessage,
        reference_answer: object,
        demand_index: Optional[int],
    ) -> AsyncDemandReport:
        index = (
            demand_index
            if demand_index is not None
            else next(self._live_index)
        )
        self.demands += 1
        # Snapshot the configuration: a demand keeps the semantics it
        # started with even if management reconfigures mid-flight.
        active = list(self.endpoints)
        mode = self.mode
        timing = self.timing
        if mode.mode is OperatingMode.SEQUENTIAL:
            return await self._serve_sequential(
                request, reference_answer, index, active, mode, timing
            )
        return await self._serve_parallel(
            request, reference_answer, index, active, mode, timing
        )

    async def _serve_parallel(
        self,
        request: RequestMessage,
        reference_answer: object,
        index: int,
        active: List[AsyncEndpoint],
        mode: ModeConfig,
        timing: SystemTimingPolicy,
    ) -> AsyncDemandReport:
        loop = asyncio.get_running_loop()
        start = loop.time()
        timeout = timing.timeout
        if not active:
            return await self._close(
                request, reference_answer, index, active, [], None,
                decision_d=0.0, timing=timing, start=start, loop=loop,
            )
        difficulty, t2s, forced = self._demand_inputs(index, active)
        tasks = [
            asyncio.ensure_future(
                endpoint.invoke_within(
                    request,
                    self._budget(endpoint.name, timeout),
                    reference_answer=reference_answer,
                    forced_outcome=forced.get(endpoint.name),
                    demand_difficulty=difficulty,
                    t2=t2s.get(endpoint.name),
                )
            )
            for endpoint in active
        ]
        results = await asyncio.gather(*tasks)
        # Arrival order: by duration, ties by fan-out order — exactly
        # the kernel heap's FIFO dispatch of equal-time events.
        arrivals = sorted(
            (
                (d, k, response)
                for k, result in enumerate(results)
                if result is not None
                for response, d in (result,)
            ),
            key=lambda arrival: (arrival[0], arrival[1]),
        )
        all_arrived = len(arrivals) == len(active)

        delivered: Optional[Adjudication] = None
        delivered_d = 0.0
        if mode.mode is OperatingMode.PARALLEL_RESPONSIVENESS:
            collected = arrivals
            for d, k, response in arrivals:
                if not response.is_fault:
                    delivered = Adjudication(
                        "result", response, active[k].name
                    )
                    delivered_d = d
                    break
            decision_d = (
                arrivals[-1][0] if (all_arrived and arrivals) else timeout
            )
        elif mode.mode is OperatingMode.PARALLEL_DYNAMIC:
            threshold = min(mode.min_responses or 1, len(active))
            if len(arrivals) >= threshold:
                # Arrivals after the decision are dropped, exactly as the
                # kernel drops post-close arrivals.
                collected = arrivals[:threshold]
                decision_d = collected[-1][0]
            else:
                collected = arrivals
                decision_d = timeout
        else:  # PARALLEL_RELIABILITY
            collected = arrivals
            decision_d = (
                arrivals[-1][0] if (all_arrived and arrivals) else timeout
            )

        items = [
            CollectedResponse(
                release=active[k].name, response=response, execution_time=d
            )
            for d, k, response in collected
        ]
        return await self._close(
            request, reference_answer, index, active, items, delivered,
            decision_d=decision_d, timing=timing, start=start, loop=loop,
            delivered_d=delivered_d,
        )

    async def _serve_sequential(
        self,
        request: RequestMessage,
        reference_answer: object,
        index: int,
        active: List[AsyncEndpoint],
        mode: ModeConfig,
        timing: SystemTimingPolicy,
    ) -> AsyncDemandReport:
        loop = asyncio.get_running_loop()
        start = loop.time()
        timeout = timing.timeout
        if not active:
            return await self._close(
                request, reference_answer, index, active, [], None,
                decision_d=0.0, timing=timing, start=start, loop=loop,
                invoked_names=[],
            )
        difficulty, t2s, forced = self._demand_inputs(index, active)
        if (
            self.script is not None
            and mode.sequential_order is SequentialOrder.FIXED
        ):
            # Kernel parity: scripted T2 rows are consumed per
            # *invocation*, so this demand reads each release's next
            # unconsumed row, not row ``index`` (see
            # :meth:`_sequential_consumption`).
            consumption = self._sequential_consumption(timeout)
            if consumption is not None:
                for k, endpoint in enumerate(active):
                    row = int(consumption[k][index])
                    if row >= 0:
                        t2s[endpoint.name] = float(self.script.t2[k][row])
        order = list(range(len(active)))
        if mode.sequential_order is SequentialOrder.RANDOM:
            # Per-demand stream, so the order is a function of the demand
            # index alone.  NOTE: this is *distributionally* equivalent
            # to the kernel's shared-rng shuffle but not bit-identical to
            # it — random-order cells are excluded from exact
            # cross-checks.
            order = [
                int(i)
                for i in self._seed_factory.generator(
                    f"order/{index}"
                ).permutation(len(active))
            ]
        items: List[CollectedResponse] = []
        cumulative = 0.0
        decision_d: Optional[float] = None
        invoked = 0
        for k in order:
            endpoint = active[k]
            invoked += 1
            remaining = min(
                timeout - cumulative,
                self._budget(endpoint.name, timeout),
            )
            result = await endpoint.invoke_within(
                request,
                remaining,
                reference_answer=reference_answer,
                forced_outcome=forced.get(endpoint.name),
                demand_difficulty=difficulty,
                t2=t2s.get(endpoint.name),
            )
            if result is None:
                # Silent within the window: the demand's TimeOut fires.
                decision_d = timeout
                break
            response, d = result
            arrival = cumulative + d
            items.append(
                CollectedResponse(
                    release=endpoint.name,
                    response=response,
                    execution_time=arrival,
                )
            )
            if not response.is_fault:
                decision_d = arrival
                break
            # Evidently incorrect: escalate to the next release.
            cumulative = arrival
        if decision_d is None:
            decision_d = cumulative
        invoked_names = [active[k].name for k in order[:invoked]]
        return await self._close(
            request, reference_answer, index, active, items, None,
            decision_d=decision_d, timing=timing, start=start, loop=loop,
            invoked_names=invoked_names,
        )

    async def _close(
        self,
        request: RequestMessage,
        reference_answer: object,
        index: int,
        active: List[AsyncEndpoint],
        items: List[CollectedResponse],
        delivered: Optional[Adjudication],
        *,
        decision_d: float,
        timing: SystemTimingPolicy,
        start: float,
        loop: asyncio.AbstractEventLoop,
        invoked_names: Optional[List[str]] = None,
        delivered_d: float = 0.0,
    ) -> AsyncDemandReport:
        if delivered is not None:
            adjudication = delivered
            system_time = delivered_d + timing.adjudication_delay
        else:
            adjudication = self.adjudicator.adjudicate(
                request, items, self._tie_rng(index)
            )
            system_time = (
                min(decision_d, timing.timeout) + timing.adjudication_delay
            )
        response = UpgradeMiddleware._guaranteed_response(
            request, adjudication
        )
        summary = self._summarize(
            index, active, items, adjudication, system_time,
            reference_answer, invoked_names,
        )
        if self.monitor is not None:
            self.monitor.record_demand(
                request_id=request.message_id,
                timestamp=start,
                active_releases=[endpoint.name for endpoint in active],
                collected=items,
                adjudication=adjudication,
                system_time=system_time,
                reference_answer=reference_answer,
                invoked_releases=invoked_names,
            )
        # Resolve at the demand's close (never before system_time): the
        # extra sleep models dT past the last collection, so a consumer
        # awaiting `call` sees kernel-identical response times in the
        # reliability and sequential modes.  (In the fast-path modes the
        # demand still holds its slot until collection closes; the
        # *metric* records the earlier consumer-visible time.)
        await checked_sleep(
            max(0.0, system_time - (loop.time() - start))
        )
        return AsyncDemandReport(
            response=response,
            collected=items,
            adjudication=adjudication,
            system_time=system_time,
            summary=summary,
            demand_index=index,
            invoked_names=invoked_names,
        )

    def _summarize(
        self,
        index: int,
        active: List[AsyncEndpoint],
        items: List[CollectedResponse],
        adjudication: Adjudication,
        system_time: float,
        reference_answer: object,
        invoked_names: Optional[List[str]],
    ) -> DemandSummary:
        by_release = {item.release: item for item in items}
        invoked = (
            set(invoked_names)
            if invoked_names is not None
            else {endpoint.name for endpoint in active}
        )
        releases = []
        for endpoint in active:
            item = by_release.get(endpoint.name)
            if item is not None:
                releases.append(
                    ReleaseSummary(
                        name=endpoint.name,
                        invoked=True,
                        collected=True,
                        outcome=MonitoringSubsystem.classify(
                            item.response, reference_answer
                        ),
                        execution_time=item.execution_time,
                    )
                )
            else:
                releases.append(
                    ReleaseSummary(
                        name=endpoint.name,
                        invoked=endpoint.name in invoked,
                        collected=False,
                    )
                )
        system_outcome = (
            MonitoringSubsystem.classify(
                adjudication.response, reference_answer
            )
            if adjudication.response is not None
            and adjudication.verdict != "unavailable"
            else None
        )
        return DemandSummary(
            index=index,
            releases=tuple(releases),
            system_verdict=adjudication.verdict,
            system_outcome=system_outcome,
            system_time=system_time,
        )

    def __repr__(self) -> str:
        return (
            f"AsyncUpgradeMiddleware(releases={self.release_names()!r}, "
            f"mode={self.mode.mode.value!r}, demands={self.demands})"
        )


__all__ = [
    "AsyncDemandReport",
    "AsyncUpgradeMiddleware",
    "DemandSummary",
    "ReleaseSummary",
]
