"""Trusted confidence mediator on the asyncio substrate (paper §6.2).

:class:`AsyncConfidenceMediator` proxies an async port, judges each
relayed response with a pluggable oracle and maintains the same
per-operation black-box Bayesian assessors as
:class:`~repro.services.mediator.ConfidenceMediator` — the oracle,
priors and published-confidence arithmetic are shared; only the relay
is awaited instead of callback-driven.
"""

from typing import Dict, Optional

from repro.bayes.beta import TruncatedBeta
from repro.bayes.blackbox import BlackBoxAssessor
from repro.services.aio.ports import AsyncPort
from repro.services.mediator import ResponseOracle, default_oracle
from repro.services.message import RequestMessage, ResponseMessage


class AsyncConfidenceMediator:
    """Third-party proxy measuring per-operation confidence, async."""

    def __init__(
        self,
        name: str,
        port: AsyncPort,
        prior: TruncatedBeta,
        target_pfd: float = 1e-3,
        oracle: ResponseOracle = default_oracle,
    ):
        self.name = name
        self.port = port
        self.prior = prior
        self.target_pfd = target_pfd
        self.oracle = oracle
        self._assessors: Dict[str, BlackBoxAssessor] = {}
        self.relayed = 0

    def assessor_for(self, operation: str) -> BlackBoxAssessor:
        """The (lazily created) assessor of one operation."""
        if operation not in self._assessors:
            self._assessors[operation] = BlackBoxAssessor(self.prior)
        return self._assessors[operation]

    async def call(
        self,
        request: RequestMessage,
        *,
        reference_answer: object = None,
        demand_index: Optional[int] = None,
    ) -> ResponseMessage:
        """Relay one demand, judging the response on the way back."""
        self.relayed += 1
        assessor = self.assessor_for(request.operation)
        response = await self.port.call(
            request,
            reference_answer=reference_answer,
            demand_index=demand_index,
        )
        failed = self.oracle(response, reference_answer)
        assessor.observe(demands=1, failures=1 if failed else 0)
        return response

    def confidence(self, operation: str) -> float:
        """Published P(pfd <= target) for *operation*."""
        return self.assessor_for(operation).confidence(self.target_pfd)

    def demands_observed(self, operation: str) -> int:
        """How many demands the mediator has actually seen."""
        return self.assessor_for(operation).demands

    def bypass_estimate(self, operation: str, true_traffic: int) -> float:
        """Fraction of *true_traffic* that bypassed the mediator."""
        if true_traffic <= 0:
            return 0.0
        seen = self.demands_observed(operation)
        return max(0.0, 1.0 - seen / true_traffic)

    def __repr__(self) -> str:
        return (
            f"AsyncConfidenceMediator(name={self.name!r}, "
            f"relayed={self.relayed})"
        )


__all__ = ["AsyncConfidenceMediator"]
