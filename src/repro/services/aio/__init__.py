"""Asyncio service substrate (``repro.services.aio``).

The coroutine twin of the callback-driven service layer: the same
message types, fault models, operating modes and adjudication rules as
:mod:`repro.core` / :mod:`repro.services`, executed by real asyncio
tasks instead of kernel callbacks.  The port protocol is

    ``async def call(request, *, reference_answer=None,
    demand_index=None) -> ResponseMessage``

and every port here — endpoint, transport, middleware, retrying port,
mediator, composite — composes by wrapping, exactly like the sync
substrate.

Two clocks run the substrate (:mod:`repro.services.aio.clock`): the
deterministic virtual-clock loop, where scripted runs are bit-identical
across repetitions and concurrency limits and a lost response raises
:class:`~repro.services.aio.clock.VirtualTimeDeadlock` instead of
hanging; and the wall clock, for measuring real asyncio overhead.  The
load harness (:mod:`repro.services.aio.load`) drives millions of
requests through the middleware under bounded-queue backpressure and
reduces straight to Table-5/6 rows; the ``service_load`` experiment
cross-checks those rows against the simulation backends.
"""

from repro.services.aio.client import AsyncConsumer
from repro.services.aio.clock import (
    VirtualClockEventLoop,
    VirtualTimeDeadlock,
    checked_sleep,
    forever,
    run_virtual,
    run_wall,
)
from repro.services.aio.composite import AsyncCompositeService
from repro.services.aio.endpoint import AsyncEndpoint
from repro.services.aio.mediator import AsyncConfidenceMediator
from repro.services.aio.middleware import (
    AsyncDemandReport,
    AsyncUpgradeMiddleware,
    DemandSummary,
    ReleaseSummary,
)
from repro.services.aio.ports import AsyncPort
from repro.services.aio.retry import AsyncRetryingPort
from repro.services.aio.transport import AsyncTransport
from repro.services.aio.load import (
    LoadResult,
    StreamingReducer,
    drive_load,
    run_load,
)

__all__ = [
    "AsyncCompositeService",
    "AsyncConfidenceMediator",
    "AsyncConsumer",
    "AsyncDemandReport",
    "AsyncEndpoint",
    "AsyncPort",
    "AsyncRetryingPort",
    "AsyncTransport",
    "AsyncUpgradeMiddleware",
    "DemandSummary",
    "LoadResult",
    "ReleaseSummary",
    "StreamingReducer",
    "VirtualClockEventLoop",
    "VirtualTimeDeadlock",
    "checked_sleep",
    "drive_load",
    "forever",
    "run_load",
    "run_virtual",
    "run_wall",
]
