"""Deployed service releases on the asyncio substrate.

:class:`AsyncEndpoint` mirrors
:class:`~repro.services.endpoint.ServiceEndpoint`: one operational
release with a WSDL, a stochastic
:class:`~repro.simulation.release_model.ReleaseBehaviour` and an
online/offline flag.  The asyncio-specific part is **budgeted
invocation**: the middleware hands each invocation the release's
collection window (its *budget*), and the endpoint classifies the
response by pure duration arithmetic *before* sleeping —

    ``d = demand_difficulty + T2``;
    collected iff ``d < budget`` (strictly).

The strict ``<`` reproduces the kernel's tie rule (the demand's timeout
event is scheduled before any response event, so at equal timestamps
the timeout wins).  Because the classification never consults the
clock, it is identical for every concurrency limit and for virtual and
wall clocks alike — the property the cross-check against the event
kernel rests on.
"""

import math
from typing import Optional, Tuple

import numpy as np

from repro.obs.metrics import Gauge
from repro.services.aio.clock import checked_sleep, forever
from repro.services.message import (
    RequestMessage,
    ResponseMessage,
    fault_response,
    result_response,
)
from repro.simulation.outcomes import Outcome
from repro.simulation.release_model import ReleaseBehaviour
from repro.services.wsdl import WsdlDescription


class AsyncEndpoint:
    """One operational release of a WS, served by coroutines.

    Parameters
    ----------
    wsdl / behaviour:
        As for the sync endpoint.
    rng:
        Randomness for *live* (unscripted) invocations — outcome and T2
        draws.  Scripted invocations (the harness passes ``t2`` and
        ``forced_outcome`` from a demand script) never touch it, so a
        scripted run is deterministic whatever this generator is.
    """

    def __init__(
        self,
        wsdl: WsdlDescription,
        behaviour: ReleaseBehaviour,
        rng: Optional[np.random.Generator] = None,
    ):
        self.wsdl = wsdl
        self.behaviour = behaviour
        self._rng = rng
        self.online = True
        self.invocations = 0
        self.responses = 0
        self._up_gauge: Optional[Gauge] = None

    @property
    def name(self) -> str:
        """Display name, e.g. ``"Web-Service 1.0"``."""
        return f"{self.wsdl.service_name} {self.wsdl.release}"

    @property
    def release(self) -> str:
        return self.wsdl.release

    # ------------------------------------------------------------------
    # administrative control + observability
    # ------------------------------------------------------------------

    def bind_up_gauge(self, gauge: Gauge) -> None:
        """Attach the release's up/down gauge (``aio.release_up.<name>``);
        reflects the online flag from now on."""
        self._up_gauge = gauge
        gauge.set(1.0 if self.online else 0.0)

    def take_offline(self) -> None:
        """Stop responding to new invocations (denial of service)."""
        self.online = False
        if self._up_gauge is not None:
            self._up_gauge.set(0.0)

    def bring_online(self) -> None:
        """Resume responding."""
        self.online = True
        if self._up_gauge is not None:
            self._up_gauge.set(1.0)

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------

    def _resolve(
        self,
        request: RequestMessage,
        reference_answer: object,
        forced_outcome: Optional[Outcome],
        demand_difficulty: float,
        t2: Optional[float],
    ) -> Tuple[Optional[ResponseMessage], float]:
        """Decide response and duration without sleeping.

        Returns ``(response, d)``; ``response`` is None for an offline
        release and ``d`` non-finite for a hang — both mean "nothing is
        ever delivered" and the caller's budget is the only signal.
        """
        self.invocations += 1
        if not self.online:
            return None, math.inf
        if not self.wsdl.has_operation(request.operation):
            # Unknown operation: an immediate, evident fault (d = 0).
            return (
                fault_response(
                    request,
                    f"unknown operation {request.operation!r}",
                    self.name,
                ),
                0.0,
            )
        if forced_outcome is not None:
            outcome = forced_outcome
        else:
            outcome = self.behaviour.outcome_distribution.sample(
                self._require_rng()
            )
        if t2 is None:
            t2 = self.behaviour.latency.sample(self._require_rng())
        d = demand_difficulty + t2
        if outcome is Outcome.EVIDENT_FAILURE:
            response = fault_response(request, "internal error", self.name)
        else:
            response = result_response(
                request,
                self.behaviour.payload_for(outcome, reference_answer),
                self.name,
            )
        return response, d

    def _require_rng(self) -> np.random.Generator:
        if self._rng is None:
            raise RuntimeError(
                f"endpoint {self.name!r} has no generator: live "
                "invocations need an rng; scripted invocations must "
                "pass t2 and forced_outcome"
            )
        return self._rng

    async def invoke_within(
        self,
        request: RequestMessage,
        budget: float,
        *,
        reference_answer: object = None,
        forced_outcome: Optional[Outcome] = None,
        demand_difficulty: float = 0.0,
        t2: Optional[float] = None,
    ) -> Optional[Tuple[ResponseMessage, float]]:
        """Serve one invocation inside a collection window.

        Returns ``(response, d)`` after sleeping ``d`` when the
        response lands strictly inside *budget*; otherwise sleeps the
        whole *budget* and returns None (response missed the window:
        offline, hang, or simply too slow).  Either way the coroutine
        occupies exactly ``min(d, budget)`` of loop time, so a gather
        over all releases finishes at the demand's close.
        """
        response, d = self._resolve(
            request, reference_answer, forced_outcome, demand_difficulty, t2
        )
        if response is not None and d < budget:
            await checked_sleep(d)
            self.responses += 1
            return response, d
        await checked_sleep(budget)
        return None

    async def call(
        self,
        request: RequestMessage,
        *,
        reference_answer: object = None,
        demand_index: Optional[int] = None,
    ) -> ResponseMessage:
        """The bare-endpoint port: no middleware, no timeout discipline.

        An offline or hanging release never resolves — the caller's own
        deadline (``asyncio.wait_for``, a retrying port) governs, just
        as for a real unreachable WS.  On the virtual clock an unguarded
        lost response raises
        :class:`~repro.services.aio.clock.VirtualTimeDeadlock`.
        """
        response, d = self._resolve(request, reference_answer, None, 0.0, None)
        if response is None or not math.isfinite(d):
            await forever()
        await checked_sleep(d)
        self.responses += 1
        assert response is not None
        return response

    def __repr__(self) -> str:
        state = "online" if self.online else "OFFLINE"
        return (
            f"AsyncEndpoint(name={self.name!r}, {state}, "
            f"invocations={self.invocations})"
        )


__all__ = ["AsyncEndpoint"]
