"""Composite Web Services on the asyncio substrate (paper Fig. 1/4).

:class:`AsyncCompositeService` runs the same orchestration semantics as
:class:`~repro.services.composite.CompositeService` — a sequence of
:class:`~repro.services.composite.OrchestrationStep` invocations against
component ports, glue-combined into the composite result, with any
component fault aborting the workflow — but each step is an awaited
``port.call``.  The step dataclass is *shared* with the sync substrate,
including the ``derive_reference`` hook of the reference-answer bugfix:
the composite-level reference describes the composite result, never a
component's, so steps derive their own (default None).
"""

from typing import Callable, Dict, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.services.aio.ports import AsyncPort
from repro.services.composite import OrchestrationStep
from repro.services.message import (
    RequestMessage,
    ResponseMessage,
    fault_response,
    result_response,
)
from repro.services.wsdl import WsdlDescription


class AsyncCompositeService:
    """A composite WS orchestrating async component services.

    Component ports may be bare endpoints, async upgrade middleware,
    mediators or retrying ports — anything satisfying
    :class:`~repro.services.aio.ports.AsyncPort` — so deploying the
    managed upgrade *inside* a composite WS is just a port choice.
    Composites themselves satisfy the protocol and nest.
    """

    def __init__(
        self,
        wsdl: WsdlDescription,
        components: Dict[str, AsyncPort],
        plan: Sequence[OrchestrationStep],
        combine: Callable[[Dict[str, object]], object],
    ):
        if not plan:
            raise ConfigurationError("orchestration plan is empty")
        unknown = [s.component for s in plan if s.component not in components]
        if unknown:
            raise ConfigurationError(
                f"plan references unknown components: {unknown!r}"
            )
        self.wsdl = wsdl
        self.components = dict(components)
        self.plan = list(plan)
        self.combine = combine
        self.served = 0
        self.composite_faults = 0

    async def call(
        self,
        request: RequestMessage,
        *,
        reference_answer: object = None,
        demand_index: Optional[int] = None,
    ) -> ResponseMessage:
        """Serve one composite request by running the orchestration plan."""
        self.served += 1
        results: Dict[str, object] = {}
        for index, step in enumerate(self.plan):
            port = self.components[step.component]
            sub_request = RequestMessage(
                operation=step.operation,
                arguments=step.build_arguments(request, results),
                reply_to=self.wsdl.service_name,
            )
            response = await port.call(
                sub_request,
                reference_answer=step.derive_reference(
                    request, reference_answer
                ),
                demand_index=demand_index,
            )
            if response.is_fault:
                self.composite_faults += 1
                return fault_response(
                    request,
                    f"component {step.component!r} failed: {response.fault}",
                    self.wsdl.service_name,
                )
            results[f"{step.component}:{index}"] = response.result
        return result_response(
            request, self.combine(results), self.wsdl.service_name
        )

    def __repr__(self) -> str:
        return (
            f"AsyncCompositeService(name={self.wsdl.service_name!r}, "
            f"components={sorted(self.components)!r}, served={self.served})"
        )


__all__ = ["AsyncCompositeService", "OrchestrationStep"]
