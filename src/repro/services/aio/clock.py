"""Virtual-clock asyncio event loop for deterministic service runs.

The asyncio substrate (:mod:`repro.services.aio`) runs the same managed
upgrade semantics as the discrete-event kernel, but on real coroutines
and tasks.  Determinism then hinges on the clock: with the wall clock,
scheduler jitter reorders timer callbacks between runs.  The
:class:`VirtualClockEventLoop` removes the wall clock entirely — it is
a stock :class:`asyncio.SelectorEventLoop` whose selector never polls
the OS.  When the loop would block waiting for the earliest timer, the
selector instead *advances virtual time by exactly that wait* and
returns no I/O events.  Every ``await asyncio.sleep(d)`` therefore
completes in zero wall time at virtual time ``now + d``, and the
callback interleaving is a pure function of the program — bit-identical
across runs and machines.

Two consequences worth knowing:

* **No real I/O.**  Sockets and subprocesses never become readable
  because the selector never polls; the loop is for simulated services
  only.  Cross-thread wakeups (``call_soon_threadsafe``) are likewise
  unsupported — the load harness is single-threaded.
* **Deadlocks are loud.**  If the loop has no ready callbacks and no
  scheduled timers while a task still awaits (a lost response with no
  timeout anywhere), a real loop would block forever; this one raises
  :class:`VirtualTimeDeadlock` naming the situation, which is exactly
  the delivery-guarantee violation the async property tests hunt for.
"""

import asyncio
import math
import selectors
from typing import Any, Awaitable, Coroutine, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class VirtualTimeDeadlock(RuntimeError):
    """The virtual-clock loop has tasks pending but nothing scheduled.

    Raised instead of blocking forever: some coroutine awaits an event
    that no timer or ready callback can ever produce (e.g. a response
    lost in transport with no timeout guarding the wait).
    """


class _VirtualSelector(selectors.SelectSelector):
    """A selector that advances a virtual clock instead of polling.

    ``select(timeout)`` is called by the event loop with the wait until
    the earliest scheduled timer (``0`` when callbacks are already
    ready, ``None`` when there is nothing to do at all).  No syscall is
    made; the virtual clock absorbs the wait.
    """

    def __init__(self) -> None:
        super().__init__()
        self.virtual_now = 0.0

    def select(
        self, timeout: Optional[float] = None
    ) -> List[Tuple[selectors.SelectorKey, int]]:
        if timeout is None:
            raise VirtualTimeDeadlock(
                "virtual-clock loop would wait forever: tasks are "
                "pending but no timer or callback is scheduled (a "
                "response was lost with no timeout guarding the await)"
            )
        if timeout > 0.0:
            advanced = self.virtual_now + timeout
            if advanced == self.virtual_now:
                # Pathological float regime (clock so large the wait is
                # below one ulp): force progress so the loop cannot spin.
                advanced = math.nextafter(self.virtual_now, math.inf)
            self.virtual_now = advanced
        return []


class VirtualClockEventLoop(asyncio.SelectorEventLoop):
    """A selector event loop running on virtual time.

    ``loop.time()`` reads the virtual clock (seconds since loop
    creation); timers behave normally against it.  All other loop
    machinery is stock asyncio.
    """

    def __init__(self) -> None:
        selector = _VirtualSelector()
        super().__init__(selector)
        self._virtual_selector = selector

    def time(self) -> float:
        return self._virtual_selector.virtual_now


def run_virtual(main: Coroutine[Any, Any, T]) -> T:
    """Run *main* to completion on a fresh virtual-clock loop.

    The async analogue of ``Simulator.run()``: returns *main*'s result
    after all its awaited work has resolved, with the whole run
    occupying zero simulated-to-wall time conversion — a million
    seconds of simulated latency cost only the callback processing.
    """
    loop = VirtualClockEventLoop()
    try:
        return loop.run_until_complete(main)
    finally:
        try:
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()


def run_wall(main: Coroutine[Any, Any, T]) -> T:
    """Run *main* on a real (wall-clock) loop — ``asyncio.run``.

    Exists as the named counterpart of :func:`run_virtual` so harness
    code can switch clocks with a string knob; wall-clock runs are for
    measuring real asyncio overhead and are *not* deterministic.
    """
    return asyncio.run(main)


async def forever() -> None:
    """Await an event that never fires (a lost message, a hang).

    Under a caller's ``asyncio.wait_for``/``asyncio.wait`` deadline the
    await is cancelled normally; with no deadline anywhere the
    virtual-clock loop raises :class:`VirtualTimeDeadlock` rather than
    hanging — silence is a test failure, not a timeout in CI.
    """
    await asyncio.Event().wait()


async def checked_sleep(delay: float) -> None:
    """``asyncio.sleep`` that treats non-finite delays as a hang.

    The latency laws can produce ``inf`` (``WithHangs``); sleeping
    ``inf`` would overflow the loop's timer arithmetic, so it routes to
    :func:`forever` — same semantics as the kernel endpoint's
    "nothing is ever delivered" branch.
    """
    if not math.isfinite(delay):
        await forever()
        return
    if delay > 0.0:
        await asyncio.sleep(delay)


__all__ = [
    "VirtualClockEventLoop",
    "VirtualTimeDeadlock",
    "checked_sleep",
    "forever",
    "run_virtual",
    "run_wall",
]
