"""Million-request load harness over the async middleware.

The harness drives N demands through an
:class:`~repro.services.aio.middleware.AsyncUpgradeMiddleware` with a
bounded producer/worker pipeline and reduces the per-demand summaries
to the same :class:`~repro.simulation.metrics.SystemMetrics` rows the
simulation backends produce — so a load run and a Table-5/6 cell are
directly comparable.

Backpressure
------------

Three knobs bound the pipeline, none of which can change a *scripted*
run's results (collection decisions are pure duration arithmetic keyed
by demand index):

* ``queue_capacity`` — the arrival queue is an ``asyncio.Queue`` with
  this maxsize; the producer's ``await put`` blocks when workers fall
  behind (loss-free backpressure, the bounded-buffer discipline).
* ``concurrency`` — number of worker coroutines consuming the queue;
  at most this many demands are in service at once.
* the middleware's own ``max_inflight`` semaphore, a second gate inside
  whatever the harness does.

Memory discipline
-----------------

At 10^6 requests an observation log is the dominant cost, so the
harness never builds one: :class:`StreamingReducer` folds each
:class:`~repro.services.aio.middleware.DemandSummary` into the metric
rows *in demand-index order* (a small reorder buffer absorbs
out-of-order completions, bounded by the worker concurrency).  Applying
in index order makes the float accumulation of the MET sums
left-to-right identical to ``metrics_from_log`` over a sequential run.
"""

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.services.aio.clock import checked_sleep, run_virtual, run_wall
from repro.services.aio.middleware import (
    AsyncUpgradeMiddleware,
    DemandSummary,
)
from repro.services.message import RequestMessage
from repro.simulation.metrics import ReleaseMetrics, SystemMetrics

#: Clock selection for :func:`run_load`.
CLOCKS = ("virtual", "wall")


class StreamingReducer:
    """Fold demand summaries into Table-5/6 rows without a log.

    ``add`` accepts summaries in any order; they are applied strictly
    in demand-index order via a reorder buffer, so the reduction is a
    pure function of the summary set (and bit-identical to the
    log-based reduction of a sequential run).
    """

    def __init__(self, release_names: Sequence[str]):
        self.metrics = SystemMetrics(
            releases=[ReleaseMetrics(name) for name in release_names]
        )
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(release_names)
        }
        self._buffer: Dict[int, DemandSummary] = {}
        self._cursor = 0
        self.peak_buffered = 0

    def add(self, summary: DemandSummary) -> None:
        self._buffer[summary.index] = summary
        if len(self._buffer) > self.peak_buffered:
            self.peak_buffered = len(self._buffer)
        while self._cursor in self._buffer:
            self._apply(self._buffer.pop(self._cursor))
            self._cursor += 1

    def _apply(self, summary: DemandSummary) -> None:
        for observation in summary.releases:
            if not observation.invoked:
                # Sequential mode: an active release the middleware
                # never asked contributes nothing to this demand.
                continue
            row = self.metrics.releases[self._index[observation.name]]
            if observation.collected:
                assert observation.outcome is not None
                assert observation.execution_time is not None
                row.record_response(
                    observation.outcome, observation.execution_time
                )
            else:
                row.record_no_response()
        if summary.system_verdict == "unavailable":
            self.metrics.system.record_no_response(summary.system_time)
        else:
            self.metrics.system.record_response(
                summary.system_outcome, summary.system_time
            )

    def finish(self) -> SystemMetrics:
        """Close the reduction; every added summary must have applied."""
        if self._buffer:
            missing = self._cursor
            raise AssertionError(
                f"reduction has gaps: demand {missing} never completed "
                f"({len(self._buffer)} summaries stranded)"
            )
        self.metrics.check_consistency()
        return self.metrics


@dataclass
class LoadResult:
    """What one load run measured."""

    metrics: SystemMetrics
    requests: int
    wall_seconds: float
    throughput: float
    clock: str
    concurrency: int
    queue_capacity: int
    peak_queue_depth: int
    peak_reorder_buffer: int
    faults: int


async def drive_load(
    middleware: AsyncUpgradeMiddleware,
    requests: int,
    *,
    concurrency: int = 16,
    queue_capacity: int = 64,
    arrival_spacing: Optional[float] = None,
    operation: str = "operation1",
    registry: Optional[MetricsRegistry] = None,
) -> LoadResult:
    """The load pipeline itself (await under a running loop).

    Demand *i* carries ``arguments=(i,)`` and ``reference_answer=i`` —
    the exact request stream of
    :func:`repro.experiments.event_sim.run_release_pair_simulation` —
    and is served with ``demand_index=i`` so a scripted middleware
    reads row *i* whichever worker picks it up.
    """
    if requests < 0:
        raise ConfigurationError(f"requests must be >= 0: {requests!r}")
    if concurrency < 1:
        raise ConfigurationError(f"concurrency must be >= 1: {concurrency!r}")
    if queue_capacity < 1:
        raise ConfigurationError(
            f"queue_capacity must be >= 1: {queue_capacity!r}"
        )
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue = asyncio.Queue(maxsize=queue_capacity)
    reducer = StreamingReducer(middleware.release_names())
    state = {"faults": 0, "peak_depth": 0}
    # Histograms retain observations; sample the queue wait at ~10k
    # points however large the run.
    wait_stride = max(1, requests // 10_000)
    wait_histogram = (
        registry.histogram("aio.queue_wait_seconds")
        if registry is not None
        else None
    )
    depth_gauge = (
        registry.gauge("aio.queue_depth") if registry is not None else None
    )

    async def producer() -> None:
        for i in range(requests):
            await queue.put((i, loop.time()))
            depth = queue.qsize()
            if depth > state["peak_depth"]:
                state["peak_depth"] = depth
            if depth_gauge is not None:
                depth_gauge.set(depth)
            if arrival_spacing is not None:
                await checked_sleep(arrival_spacing)
        for _ in range(concurrency):
            await queue.put(None)

    async def worker() -> None:
        while True:
            item = await queue.get()
            if item is None:
                return
            i, enqueued_at = item
            if wait_histogram is not None and i % wait_stride == 0:
                wait_histogram.observe(loop.time() - enqueued_at)
            request = RequestMessage(operation=operation, arguments=(i,))
            report = await middleware.call_detailed(
                request, reference_answer=i, demand_index=i
            )
            if report.response.is_fault:
                state["faults"] += 1
            reducer.add(report.summary)

    started = time.perf_counter()
    await asyncio.gather(
        producer(), *(worker() for _ in range(concurrency))
    )
    wall_seconds = time.perf_counter() - started
    metrics = reducer.finish()
    throughput = (
        requests / wall_seconds if wall_seconds > 0 else float("inf")
    )
    if registry is not None:
        registry.counter("aio.demands").inc(requests)
        registry.counter("aio.faults").inc(state["faults"])
        registry.gauge("aio.inflight_peak").set(
            min(concurrency, requests)
        )
        registry.gauge("aio.throughput").set(throughput)
    return LoadResult(
        metrics=metrics,
        requests=requests,
        wall_seconds=wall_seconds,
        throughput=throughput,
        clock="running-loop",
        concurrency=concurrency,
        queue_capacity=queue_capacity,
        peak_queue_depth=state["peak_depth"],
        peak_reorder_buffer=reducer.peak_buffered,
        faults=state["faults"],
    )


def run_load(
    middleware: AsyncUpgradeMiddleware,
    requests: int,
    *,
    concurrency: int = 16,
    queue_capacity: int = 64,
    clock: str = "virtual",
    arrival_spacing: Optional[float] = None,
    operation: str = "operation1",
    registry: Optional[MetricsRegistry] = None,
) -> LoadResult:
    """Run the load pipeline on a fresh loop and return its result.

    ``clock="virtual"`` (the default) runs on the deterministic
    virtual-clock loop — simulated seconds are free, results are
    bit-identical across repetitions and concurrency limits (scripted
    middleware), and ``wall_seconds``/``throughput`` measure pure
    processing cost (no real sleeping); those are the numbers quoted
    in ``BENCH_engine.json``.  ``clock="wall"`` runs on a real loop —
    sleeps take real seconds and the interleaving is not
    deterministic — for demos and latency-realistic soak runs.
    """
    if clock not in CLOCKS:
        raise ConfigurationError(f"clock must be one of {CLOCKS}: {clock!r}")
    runner = run_virtual if clock == "virtual" else run_wall
    result = runner(
        drive_load(
            middleware,
            requests,
            concurrency=concurrency,
            queue_capacity=queue_capacity,
            arrival_spacing=arrival_spacing,
            operation=operation,
            registry=registry,
        )
    )
    result.clock = clock
    return result


__all__ = [
    "CLOCKS",
    "LoadResult",
    "StreamingReducer",
    "drive_load",
    "run_load",
]
