"""Async service consumers (requesters).

:class:`AsyncConsumer` issues requests against any
:class:`~repro.services.aio.ports.AsyncPort` under a client-side
deadline, keeping the same satisfaction statistics
(:class:`~repro.services.client.ConsumerStats`) as the sync consumer.
A response missing the deadline counts as a client timeout and the
in-flight call is cancelled — on the virtual clock the cancellation is
what keeps a lost response from deadlocking the loop.
"""

import asyncio
from typing import Optional

from repro.common.validation import check_positive
from repro.services.aio.ports import AsyncPort
from repro.services.client import ConsumerStats
from repro.services.message import RequestMessage, ResponseMessage


class AsyncConsumer:
    """A consumer issuing awaited requests with a client-side timeout."""

    def __init__(self, name: str, port: AsyncPort, timeout: float = 5.0):
        self.name = name
        self.port = port
        self.timeout = check_positive(timeout, "timeout")
        self.stats = ConsumerStats()

    async def issue(
        self,
        request: RequestMessage,
        reference_answer: object = None,
        demand_index: Optional[int] = None,
    ) -> Optional[ResponseMessage]:
        """Send one request; returns the response, or None on client
        timeout (the port call is cancelled)."""
        self.stats.issued += 1
        loop = asyncio.get_running_loop()
        issued_at = loop.time()
        try:
            response = await asyncio.wait_for(
                self.port.call(
                    request,
                    reference_answer=reference_answer,
                    demand_index=demand_index,
                ),
                timeout=self.timeout,
            )
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            return None
        self.stats.answered += 1
        if response.is_fault:
            self.stats.faults += 1
        self.stats.response_times.append(loop.time() - issued_at)
        return response

    def __repr__(self) -> str:
        return (
            f"AsyncConsumer(name={self.name!r}, "
            f"issued={self.stats.issued}, timeouts={self.stats.timeouts})"
        )


__all__ = ["AsyncConsumer"]
