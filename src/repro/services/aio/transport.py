"""Lossy, latent message transport for the asyncio substrate.

:class:`AsyncTransport` is the async twin of
:class:`~repro.services.transport.SimulatedTransport`: it wraps an
inner :class:`~repro.services.aio.ports.AsyncPort` and models the
network between consumer and service — a latency draw on the way in,
a latency draw on the way out, and an optional loss probability.

A lost message never resolves (``await forever()``): exactly like a
dropped UDP datagram, nothing downstream learns about it except via
the caller's own timeout discipline.  This is deliberate — the async
delivery-guarantee tests drive retrying ports over a lossy transport
and assert the consumer still receives exactly one response; a
transport that silently substituted a fault would mask the very bugs
those tests exist to catch.
"""

from typing import Optional

import numpy as np

from repro.common.seeding import DEFAULT_COMPONENT_SEED, spawn_generator
from repro.services.aio.clock import checked_sleep, forever
from repro.services.aio.ports import AsyncPort
from repro.services.message import RequestMessage, ResponseMessage
from repro.simulation.distributions import Deterministic, Distribution


class AsyncTransport:
    """Network between a consumer and an async port.

    Parameters
    ----------
    port:
        The inner async port being reached over this network.
    latency:
        One-way latency law, applied independently to request and
        response legs.
    loss_probability:
        Per-leg probability the message vanishes.
    rng:
        Randomness for latency/loss draws.
    """

    def __init__(
        self,
        port: AsyncPort,
        latency: Optional[Distribution] = None,
        loss_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        self.port = port
        self.latency = latency if latency is not None else Deterministic(0.0)
        self.loss_probability = loss_probability
        self._rng = (
            rng if rng is not None else spawn_generator(DEFAULT_COMPONENT_SEED)
        )
        self.sent = 0
        self.lost = 0

    async def _leg(self) -> None:
        """One network traversal: maybe lose the message, else delay it."""
        self.sent += 1
        if (
            self.loss_probability > 0.0
            and self._rng.random() < self.loss_probability
        ):
            self.lost += 1
            await forever()
        await checked_sleep(float(self.latency.sample(self._rng)))

    async def call(
        self,
        request: RequestMessage,
        *,
        reference_answer: object = None,
        demand_index: Optional[int] = None,
    ) -> ResponseMessage:
        await self._leg()
        response = await self.port.call(
            request,
            reference_answer=reference_answer,
            demand_index=demand_index,
        )
        await self._leg()
        return response

    def __repr__(self) -> str:
        return (
            f"AsyncTransport(latency={self.latency!r}, "
            f"loss={self.loss_probability}, sent={self.sent}, "
            f"lost={self.lost})"
        )


__all__ = ["AsyncTransport"]
