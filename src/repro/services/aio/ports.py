"""The async port protocol.

The synchronous substrate's port protocol is
``submit(simulator, request, deliver, reference_answer=None)`` —
callback style over the discrete-event kernel.  Its asyncio twin is

    ``async def call(request, *, reference_answer=None,
    demand_index=None) -> ResponseMessage``

with the same delivery guarantee: every call resolves to exactly one
non-None :class:`~repro.services.message.ResponseMessage` (an
adjudicated result or an evident fault), never silently hangs past its
own timeout discipline, and never produces a second response.  The
message types, fault models and adjudication semantics are shared with
the sync substrate — only the execution substrate differs.

``demand_index`` is the scripted-determinism hook: harnesses that
pre-draw all per-demand randomness (see
:class:`~repro.runtime.sampling.DemandScript`) pass the demand's index
so the port reads *its* script rows regardless of completion order —
that is what makes results independent of the concurrency limit.
Ports that do not use scripts ignore it.
"""

from typing import Optional, Protocol, runtime_checkable

from repro.services.message import RequestMessage, ResponseMessage


@runtime_checkable
class AsyncPort(Protocol):
    """Anything serving async demands: endpoint, middleware, mediator,
    retrying port, composite — they compose the same way the sync ports
    do, by wrapping each other."""

    async def call(
        self,
        request: RequestMessage,
        *,
        reference_answer: object = None,
        demand_index: Optional[int] = None,
    ) -> ResponseMessage:
        ...  # pragma: no cover - protocol signature


__all__ = ["AsyncPort"]
