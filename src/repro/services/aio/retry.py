"""Retry of evident failures on the asyncio substrate (paper §2.1).

:class:`AsyncRetryingPort` is the coroutine twin of
:class:`~repro.services.retry.RetryingPort`, with the same first-valid-
wins semantics: an attempt superseded by its own timeout is **not**
cancelled — it stays live, and a late valid response from it settles
the demand ahead of the retry (``late_accepted`` counts these).  Only
late *faults* are discarded; the retry they triggered is already
running.

The async analogue of the timer-leak bugfix is task hygiene: when the
demand settles — by any attempt's response or by exhaustion — every
outstanding attempt task is cancelled and awaited before :meth:`call`
returns, so a resolved call leaves zero live tasks behind.  The
delivery-guarantee tests assert exactly that.
"""

import asyncio
from typing import Dict, Optional

from repro.services.aio.clock import checked_sleep
from repro.services.aio.ports import AsyncPort
from repro.services.message import (
    RequestMessage,
    ResponseMessage,
    fault_response,
)
from repro.services.retry import RetryPolicy


class AsyncRetryingPort:
    """Wrap an async port with bounded retry of evident failures.

    Delivery guarantee: each :meth:`call` resolves to exactly one
    response — the first valid response across all live attempts, a
    fault once attempts are exhausted, or a retry-layer timeout fault —
    and cancels every attempt still in flight before resolving.
    """

    def __init__(self, port: AsyncPort, policy: Optional[RetryPolicy] = None):
        self.port = port
        self.policy = policy or RetryPolicy()
        self.attempts = 0
        self.retries = 0
        self.late_accepted = 0

    async def call(
        self,
        request: RequestMessage,
        *,
        reference_answer: object = None,
        demand_index: Optional[int] = None,
    ) -> ResponseMessage:
        policy = self.policy
        live: Dict[asyncio.Task, int] = {}
        try:
            attempt_number = 0
            while True:
                attempt_number += 1
                self.attempts += 1
                # Fresh message id per attempt (a real client resends).
                resent = RequestMessage(
                    operation=request.operation,
                    arguments=request.arguments,
                    headers=dict(request.headers),
                    reply_to=request.reply_to,
                )
                live[
                    asyncio.ensure_future(
                        self.port.call(
                            resent,
                            reference_answer=reference_answer,
                            demand_index=demand_index,
                        )
                    )
                ] = attempt_number
                response = await self._collect(live, attempt_number)
                if response is not None:
                    return response
                # The current attempt failed evidently (fault or
                # per-attempt timeout) with attempts remaining.
                if attempt_number >= policy.max_attempts:
                    return fault_response(
                        request,
                        f"no response after {policy.max_attempts} attempts",
                        "retry",
                    )
                self.retries += 1
                await checked_sleep(policy.backoff)
        finally:
            await self._cancel_all(live)

    async def _collect(
        self, live: Dict[asyncio.Task, int], current: int
    ) -> Optional[ResponseMessage]:
        """Await the live attempts under the current attempt's deadline.

        Returns the settling response, or None when the current attempt
        failed evidently and the demand should retry (superseded
        attempts stay in *live*).
        """
        policy = self.policy
        deadline: Optional[float] = None
        if policy.attempt_timeout is not None:
            deadline = (
                asyncio.get_running_loop().time() + policy.attempt_timeout
            )
        while live:
            timeout = None
            if deadline is not None:
                timeout = max(
                    0.0, deadline - asyncio.get_running_loop().time()
                )
            done, _ = await asyncio.wait(
                set(live),
                timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if not done:
                # The current attempt's deadline expired; its task stays
                # live (a late valid response still wins) and the caller
                # decides between retry and exhaustion.
                return None
            for task in done:
                number = live.pop(task)
                response = task.result()
                if not response.is_fault:
                    if number != current:
                        self.late_accepted += 1
                    return response
                if number == current:
                    # The current attempt faulted: retry or exhaust.
                    return None
                # A superseded attempt's fault carries no information.
        return None

    @staticmethod
    async def _cancel_all(live: Dict[asyncio.Task, int]) -> None:
        """Cancel and drain every outstanding attempt task."""
        if not live:
            return
        for task in live:
            task.cancel()
        await asyncio.gather(*live, return_exceptions=True)
        live.clear()

    def __repr__(self) -> str:
        return (
            f"AsyncRetryingPort(policy={self.policy!r}, "
            f"attempts={self.attempts}, retries={self.retries})"
        )


__all__ = ["AsyncRetryingPort"]
