"""Confidence-publishing strategies (paper §6.2).

The paper evaluates five ways to expose "confidence in correctness" to
consumers.  Each strategy here takes a live confidence source — any
zero-argument callable returning the current confidence for an operation
— and exposes it the corresponding way:

1. :class:`ResponseExtensionPublisher` — piggyback the confidence on
   every response (WSDL option 1; breaks backward compatibility).
2. :class:`ConfidenceOperationPublisher` — a separate ``OperationConf``
   query operation (option 2; backward compatible, extra round trip).
3. :class:`ConfidentVariantPublisher` — ``<op>Conf`` operation variants
   (option 3; combines the advantages).
4. Protocol handlers (see :mod:`repro.services.handlers`) — transparent
   header-based publication.
5. A trusted mediator (see :mod:`repro.services.mediator`) — a
   third-party proxy that measures and publishes confidence itself.

The registry path ("clients get this information directly from the UDDI
archive") is implemented by :meth:`repro.services.registry.UddiRegistry.
publish_confidence`.
"""

from typing import Callable, Dict

from repro.common.errors import UnknownOperationError
from repro.simulation.engine import Simulator
from repro.services.message import (
    RequestMessage,
    ResponseMessage,
    result_response,
)

#: A live confidence source: operation name -> current confidence.
ConfidenceSource = Callable[[str], float]

#: Response-header / result-field key under which confidence is published.
CONFIDENCE_FIELD = "confidence"


class ResponseExtensionPublisher:
    """Option 1: every response carries the operation's confidence.

    Wraps a port; responses are rewritten so their ``result`` becomes
    ``{"value": original, "confidence": c}`` — the data-level analogue of
    adding the ``Op1Conf`` element to the response schema.
    """

    def __init__(self, port, source: ConfidenceSource):
        self.port = port
        self.source = source

    def submit(
        self,
        simulator: Simulator,
        request: RequestMessage,
        deliver: Callable[[ResponseMessage], None],
        reference_answer: object = None,
    ) -> None:
        def rewrite(response: ResponseMessage) -> None:
            if response.is_fault:
                deliver(response)
                return
            enriched = ResponseMessage(
                in_reply_to=response.in_reply_to,
                operation=response.operation,
                result={
                    "value": response.result,
                    CONFIDENCE_FIELD: self.source(response.operation),
                },
                headers=response.headers,
                responder=response.responder,
            )
            deliver(enriched)

        self.port.submit(
            simulator, request, rewrite, reference_answer=reference_answer
        )


class ConfidenceOperationPublisher:
    """Option 2: a separate ``OperationConf`` operation.

    Requests for ``OperationConf`` are answered locally with the current
    confidence of the operation named in the first argument; everything
    else passes through untouched (backward compatible).
    """

    CONF_OPERATION = "OperationConf"

    def __init__(self, port, source: ConfidenceSource):
        self.port = port
        self.source = source

    def submit(
        self,
        simulator: Simulator,
        request: RequestMessage,
        deliver: Callable[[ResponseMessage], None],
        reference_answer: object = None,
    ) -> None:
        if request.operation == self.CONF_OPERATION:
            if not request.arguments:
                raise UnknownOperationError(
                    "OperationConf requires the target operation name"
                )
            target = str(request.arguments[0])
            confidence = self.source(target)
            simulator.schedule(
                0.0,
                lambda: deliver(
                    result_response(request, confidence, "confidence-op")
                ),
            )
            return
        self.port.submit(
            simulator, request, deliver, reference_answer=reference_answer
        )


class ConfidentVariantPublisher:
    """Option 3: ``<op>Conf`` variants of every operation.

    A request for ``operation1Conf`` is forwarded as ``operation1`` and
    its response is extended with the confidence; plain ``operation1``
    requests pass through untouched, so legacy clients keep working while
    confidence-conscious clients get per-invocation confidence.
    """

    SUFFIX = "Conf"

    def __init__(self, port, source: ConfidenceSource):
        self.port = port
        self.source = source

    def submit(
        self,
        simulator: Simulator,
        request: RequestMessage,
        deliver: Callable[[ResponseMessage], None],
        reference_answer: object = None,
    ) -> None:
        if not request.operation.endswith(self.SUFFIX):
            self.port.submit(
                simulator, request, deliver, reference_answer=reference_answer
            )
            return
        base_operation = request.operation[: -len(self.SUFFIX)]
        forwarded = RequestMessage(
            operation=base_operation,
            arguments=request.arguments,
            headers=request.headers,
            reply_to=request.reply_to,
        )

        def rewrite(response: ResponseMessage) -> None:
            if response.is_fault:
                deliver(response)
                return
            deliver(
                ResponseMessage(
                    in_reply_to=request.message_id,
                    operation=request.operation,
                    result={
                        "value": response.result,
                        CONFIDENCE_FIELD: self.source(base_operation),
                    },
                    responder=response.responder,
                )
            )

        self.port.submit(
            simulator, forwarded, rewrite, reference_answer=reference_answer
        )


class StaticConfidenceSource:
    """A fixed confidence table — the provider's published figures."""

    def __init__(self, table: Dict[str, float]):
        self.table = dict(table)

    def __call__(self, operation: str) -> float:
        return self.table.get(operation, 0.0)
