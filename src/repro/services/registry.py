"""UDDI-like service registry with upgrade-notification hooks.

Providers *publish* service descriptions (WSDL analogues); consumers
*find* them.  Two paper-specific extensions:

* an entry may list **several operational releases** of the same service
  (§3.1: "extend the WSDL description of a WS by adding a reference to a
  new release"), which is one of the §7.2 notification mechanisms —
  consumers polling the registry can detect the new release while both
  stay operational;
* an entry carries published **confidence records** per operation
  (§6.2: "The clients will be able to get this information directly from
  the UDDI archive").

Subscribers registered with :meth:`UddiRegistry.subscribe` get callbacks
on publish/upgrade events — the "WS notification service" alternative.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import ServiceError
from repro.services.wsdl import WsdlDescription


@dataclass
class RegistryEntry:
    """One service's registry record: all operational releases + metadata."""

    service_name: str
    releases: List[WsdlDescription] = field(default_factory=list)
    confidence: Dict[str, float] = field(default_factory=dict)
    provider: str = ""

    @property
    def latest(self) -> WsdlDescription:
        """The most recently published release."""
        if not self.releases:
            raise ServiceError(
                f"service {self.service_name!r} has no published releases"
            )
        return self.releases[-1]

    @property
    def release_labels(self) -> List[str]:
        return [wsdl.release for wsdl in self.releases]

    def release(self, label: str) -> WsdlDescription:
        """Look up a specific release by label."""
        for wsdl in self.releases:
            if wsdl.release == label:
                return wsdl
        raise ServiceError(
            f"service {self.service_name!r} has no release {label!r} "
            f"(has {self.release_labels!r})"
        )


#: Signature of upgrade-event callbacks:
#: ``(event, service_name, release_label)`` with event in
#: {"published", "upgraded", "withdrawn"}.
RegistryListener = Callable[[str, str, str], None]


class UddiRegistry:
    """In-process UDDI analogue.

    Example
    -------
    >>> from repro.services.wsdl import default_wsdl
    >>> registry = UddiRegistry()
    >>> entry = registry.publish(default_wsdl("Stock", "node-1",
    ...                                       release="1.0"))
    >>> registry.find("Stock").latest.release
    '1.0'
    """

    def __init__(self):
        self._entries: Dict[str, RegistryEntry] = {}
        self._listeners: List[RegistryListener] = []

    # ------------------------------------------------------------------
    # provider side
    # ------------------------------------------------------------------

    def publish(
        self, wsdl: WsdlDescription, provider: str = ""
    ) -> RegistryEntry:
        """Publish a (new release of a) service.

        The first publication creates the entry ("published" event);
        subsequent ones append a release and fire "upgraded" — existing
        releases stay operational, per the §3.1 scenario.
        """
        entry = self._entries.get(wsdl.service_name)
        if entry is None:
            entry = RegistryEntry(
                service_name=wsdl.service_name,
                releases=[wsdl],
                provider=provider,
            )
            self._entries[wsdl.service_name] = entry
            self._notify("published", wsdl.service_name, wsdl.release)
            return entry
        if wsdl.release in entry.release_labels:
            raise ServiceError(
                f"release {wsdl.release!r} of {wsdl.service_name!r} "
                "is already published"
            )
        entry.releases.append(wsdl)
        self._notify("upgraded", wsdl.service_name, wsdl.release)
        return entry

    def withdraw(self, service_name: str, release: str) -> None:
        """Remove one release (e.g. phasing out the old one post-switch)."""
        entry = self.find(service_name)
        remaining = [w for w in entry.releases if w.release != release]
        if len(remaining) == len(entry.releases):
            raise ServiceError(
                f"cannot withdraw unknown release {release!r} of "
                f"{service_name!r}"
            )
        entry.releases = remaining
        self._notify("withdrawn", service_name, release)

    def publish_confidence(
        self, service_name: str, operation: str, confidence: float
    ) -> None:
        """Attach/update a published confidence figure (§6.2, UDDI path)."""
        entry = self.find(service_name)
        if not 0.0 <= confidence <= 1.0:
            raise ServiceError(
                f"confidence must be a probability: {confidence!r}"
            )
        entry.confidence[operation] = float(confidence)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------

    def find(self, service_name: str) -> RegistryEntry:
        """Look a service up by name."""
        try:
            return self._entries[service_name]
        except KeyError:
            raise ServiceError(
                f"no service {service_name!r} in the registry"
            ) from None

    def has_service(self, service_name: str) -> bool:
        return service_name in self._entries

    def service_names(self) -> List[str]:
        return sorted(self._entries)

    def confidence_of(
        self, service_name: str, operation: str
    ) -> Optional[float]:
        """Published confidence for an operation, or None if unpublished."""
        return self.find(service_name).confidence.get(operation)

    # ------------------------------------------------------------------
    # notification (§7.2)
    # ------------------------------------------------------------------

    def subscribe(self, listener: RegistryListener) -> Callable[[], None]:
        """Register an upgrade-event callback; returns an unsubscribe fn."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def _notify(self, event: str, service_name: str, release: str) -> None:
        for listener in list(self._listeners):
            listener(event, service_name, release)
