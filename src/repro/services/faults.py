"""Fault injection for simulated services (failure modes of §2.1).

The paper distinguishes transient vs non-transient and evident vs
non-evident failures.  The endpoint's outcome distribution already models
steady-state evident/non-evident failures; this module injects the
*time-structured* modes on top:

* :class:`DowntimeInjector` — periods during which a release returns no
  response at all (denial of service — an evident failure detected by
  timeout);
* :class:`TransientBurstInjector` — windows during which a release's
  failure probabilities are temporarily inflated (transient conditions
  tolerable by retry, §2.1);
* :class:`RegressionInjector` — a deterministic, non-transient fault:
  every demand whose key matches a predicate fails non-evidently
  (models the "new faults in the new release" risk that motivates the
  managed upgrade).
"""

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.simulation.engine import Simulator
from repro.simulation.outcomes import Outcome
from repro.services.endpoint import ServiceEndpoint


class DowntimeInjector:
    """Schedule offline windows for an endpoint.

    Each window is a ``(start, duration)`` pair in simulated seconds.
    """

    def __init__(self, windows: Sequence[Tuple[float, float]]):
        for start, duration in windows:
            if start < 0 or duration <= 0:
                raise ConfigurationError(
                    f"bad downtime window: ({start!r}, {duration!r})"
                )
        self.windows = sorted(windows)

    def arm(self, simulator: Simulator, endpoint: ServiceEndpoint) -> None:
        """Schedule all offline/online transitions on *simulator*."""
        for start, duration in self.windows:
            simulator.schedule_at(
                max(start, simulator.now),
                endpoint.take_offline,
                label=f"down:{endpoint.name}",
            )
            simulator.schedule_at(
                max(start + duration, simulator.now),
                endpoint.bring_online,
                label=f"up:{endpoint.name}",
            )


class TransientBurstInjector:
    """Temporarily degrade an endpoint's outcome distribution.

    During each window the endpoint's behaviour is replaced by a degraded
    one; outside the windows the original behaviour is restored.
    """

    def __init__(
        self,
        windows: Sequence[Tuple[float, float]],
        degraded_distribution,
    ):
        self.windows = sorted(windows)
        self.degraded_distribution = degraded_distribution

    def arm(self, simulator: Simulator, endpoint: ServiceEndpoint) -> None:
        original = endpoint.behaviour.outcome_distribution

        def degrade() -> None:
            endpoint.behaviour.outcome_distribution = (
                self.degraded_distribution
            )

        def restore() -> None:
            endpoint.behaviour.outcome_distribution = original

        for start, duration in self.windows:
            simulator.schedule_at(
                max(start, simulator.now), degrade,
                label=f"burst-on:{endpoint.name}",
            )
            simulator.schedule_at(
                max(start + duration, simulator.now), restore,
                label=f"burst-off:{endpoint.name}",
            )


class RegressionInjector:
    """Deterministic non-evident failures on a demand subdomain.

    Wraps an endpoint's behaviour so that demands whose reference answer
    satisfies *predicate* always fail non-evidently — the classic
    regression introduced by an upgrade, only detectable back-to-back
    against the old release.
    """

    def __init__(self, predicate: Callable[[object], bool]):
        self.predicate = predicate
        self.triggered = 0

    def wrap(self, endpoint: ServiceEndpoint) -> None:
        behaviour = endpoint.behaviour
        inner_sample = behaviour.sample_response
        injector = self

        def sample_response(
            rng: np.random.Generator,
            reference_answer: object = None,
            forced_outcome: Outcome = None,
        ):
            if reference_answer is not None and injector.predicate(
                reference_answer
            ):
                injector.triggered += 1
                return inner_sample(
                    rng,
                    reference_answer=reference_answer,
                    forced_outcome=Outcome.NON_EVIDENT_FAILURE,
                )
            return inner_sample(
                rng,
                reference_answer=reference_answer,
                forced_outcome=forced_outcome,
            )

        behaviour.sample_response = sample_response  # type: ignore[method-assign]
