"""WSDL-like service descriptions, including the §6.2 confidence options.

A :class:`WsdlDescription` captures what the paper's WSDL fragments show:
named operations with typed request/response elements.  Three transforms
implement the paper's alternatives for *publishing confidence*:

1. :meth:`WsdlDescription.with_confidence_in_response` — extend every
   operation's response with an ``OpConf`` double (not backward
   compatible);
2. :meth:`WsdlDescription.with_confidence_operation` — add a separate
   ``OperationConf`` operation mapping operation name -> confidence
   (backward compatible, but needs an extra invocation);
3. :meth:`WsdlDescription.with_confident_variants` — add an
   ``<op>Conf`` variant per operation whose response carries the
   confidence (backward compatible *and* per-invocation).

:meth:`WsdlDescription.to_xml` renders a faithful analogue of the paper's
``<types>`` fragment so examples/tests can show real WSDL text.
"""

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.common.errors import ConfigurationError

#: XML-schema type names used in the paper's fragments.
XSD_TYPES = ("s:int", "s:string", "s:double", "s:boolean", "s:float")


@dataclass(frozen=True)
class Parameter:
    """One typed element of a request or response message."""

    name: str
    xsd_type: str = "s:string"

    def __post_init__(self) -> None:
        if self.xsd_type not in XSD_TYPES:
            raise ConfigurationError(
                f"unsupported xsd type {self.xsd_type!r}; expected one of "
                f"{XSD_TYPES}"
            )

    def to_xml(self, indent: str = "          ") -> str:
        return (
            f'{indent}<s:element minOccurs="0" maxOccurs="1"\n'
            f'{indent}   name="{self.name}" type="{self.xsd_type}"/>'
        )


@dataclass(frozen=True)
class OperationSpec:
    """One WSDL operation: a request element and a response element."""

    name: str
    inputs: Tuple[Parameter, ...] = ()
    outputs: Tuple[Parameter, ...] = ()

    def request_element(self) -> str:
        return self._element(f"{_cap(self.name)}Request", self.inputs)

    def response_element(self) -> str:
        return self._element(f"{_cap(self.name)}Response", self.outputs)

    @staticmethod
    def _element(name: str, params: Tuple[Parameter, ...]) -> str:
        body = "\n".join(p.to_xml() for p in params)
        return (
            f'    <s:element name="{name}">\n'
            f"      <s:complexType>\n"
            f"        <s:sequence>\n"
            f"{body}\n"
            f"        </s:sequence>\n"
            f"      </s:complexType>\n"
            f"    </s:element>"
        )


def _cap(name: str) -> str:
    return name[:1].upper() + name[1:]


#: Header name under which handler-published confidence travels (§6.2).
CONFIDENCE_HEADER = "x-ws-confidence"


@dataclass(frozen=True)
class WsdlDescription:
    """A service's published interface (WSDL analogue).

    Attributes
    ----------
    service_name:
        The service's advertised name.
    url:
        Deployment node ("URL: Node 1" in the paper's figures).
    operations:
        The published operations.
    release:
        Release label (e.g. "1.0", "1.1"); the paper notes that a release
        number on the interface is what lets consumers *detect* upgrades
        (§3.2).
    """

    service_name: str
    url: str
    operations: Tuple[OperationSpec, ...] = ()
    release: str = "1.0"

    def operation(self, name: str) -> OperationSpec:
        """Look up an operation; raises ConfigurationError if unknown."""
        for op in self.operations:
            if op.name == name:
                return op
        raise ConfigurationError(
            f"service {self.service_name!r} has no operation {name!r}"
        )

    def has_operation(self, name: str) -> bool:
        # Called once per endpoint invocation (hot path of the
        # event-driven grids): membership is tested against a lazily
        # built name set instead of scanning the operation tuple.  The
        # cache is stored outside the (frozen) dataclass fields, so
        # equality / repr / replace() semantics are unchanged.
        names = self.__dict__.get("_operation_names")
        if names is None:
            names = frozenset(op.name for op in self.operations)
            object.__setattr__(self, "_operation_names", names)
        return name in names

    def operation_names(self) -> List[str]:
        return [op.name for op in self.operations]

    # ------------------------------------------------------------------
    # §6.2 confidence-publishing transforms
    # ------------------------------------------------------------------

    def with_confidence_in_response(self) -> "WsdlDescription":
        """Option 1: every response gains an ``<Op>Conf`` double element.

        Not backward compatible — existing clients parsing the response
        schema strictly will break — which the paper deems acceptable only
        for newly deployed services.
        """
        new_ops = tuple(
            replace(
                op,
                outputs=op.outputs
                + (Parameter(f"{_cap(op.name)}Conf", "s:double"),),
            )
            for op in self.operations
        )
        return replace(self, operations=new_ops)

    def with_confidence_operation(self) -> "WsdlDescription":
        """Option 2: add a separate ``OperationConf`` query operation."""
        if self.has_operation("OperationConf"):
            return self
        conf_op = OperationSpec(
            "OperationConf",
            inputs=(Parameter("operation", "s:string"),),
            outputs=(Parameter("OpConf", "s:double"),),
        )
        return replace(self, operations=self.operations + (conf_op,))

    def with_confident_variants(self) -> "WsdlDescription":
        """Option 3: add an ``<op>Conf`` variant of every operation.

        Confidence-conscious consumers switch to the variant; legacy
        clients keep using the original — backward compatibility is
        preserved while confidence still rides on every execution.
        """
        variants = tuple(
            OperationSpec(
                f"{op.name}Conf",
                inputs=op.inputs,
                outputs=op.outputs
                + (Parameter(f"{_cap(op.name)}Conf", "s:double"),),
            )
            for op in self.operations
            if not op.name.endswith("Conf")
        )
        return replace(self, operations=self.operations + variants)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def to_xml(self) -> str:
        """Render the ``<types>`` section as in the paper's fragments."""
        elements = []
        for op in self.operations:
            elements.append(op.request_element())
            elements.append(op.response_element())
        body = "\n".join(elements)
        return (
            f"<!-- service: {self.service_name} release {self.release} "
            f"at {self.url} -->\n"
            "<types>\n"
            '  <s:schema elementFormDefault="qualified">\n'
            f"{body}\n"
            "  </s:schema>\n"
            "</types>"
        )


def default_wsdl(
    service_name: str, url: str, release: str = "1.0"
) -> WsdlDescription:
    """The paper's contrived example interface: ``operation1(int, string)``.

    ``operation1`` takes ``param1: int`` and ``param2: string`` and
    returns ``Op1Result: string``.
    """
    op = OperationSpec(
        "operation1",
        inputs=(Parameter("param1", "s:int"), Parameter("param2", "s:string")),
        outputs=(Parameter("Op1Result", "s:string"),),
    )
    return WsdlDescription(
        service_name=service_name, url=url, operations=(op,), release=release
    )
