"""Append-only segmented event log (``repro.store``).

The run store treats every ``(experiment, cell key)`` pair as one
*stream*: an append-only sequence of versioned event envelopes
(:mod:`repro.store.envelope`) spread over bounded JSONL *segment*
files, fronted by a commit/offset index.  Layout::

    <root>/<experiment>/<digest-of-key>/
        meta.json            # the full cell key, for humans and `project`
        segment-00000000.jsonl
        segment-00000001.jsonl
        index.json           # committed segments: events, bytes, first_seq
        projections/         # checkpointed projection positions

Durability contract:

* **append** buffers into the active segment file;
* **commit** flushes and atomically rewrites ``index.json`` (temp file
  + rename) recording the committed event count *and byte offset* of
  every segment — readers only ever see committed events, so a torn
  write past the last commit is invisible;
* reopening a stream for append first *reconciles*: any uncommitted
  tail beyond the index's byte offset is truncated away, restoring the
  exact committed prefix.  Interrupting a run therefore loses at most
  the in-flight cell, never a committed one — the property resumable
  grids are built on.

Streams are per-cell, so parallel workers never contend for a file;
the parent process commits results, workers (optionally) append trace
events to their own stream.
"""

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import (
    Any,
    Dict,
    IO,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.obs.envelope import (
    SCHEMA_VERSION,
    decode_line,
    encode_event,
)
from repro.obs.metrics import MetricsRegistry
from repro.store.snapshot import (
    CELL_RESULT_KIND,
    result_event_fields,
    result_from_event,
)

#: Events per segment before the appender rotates to a new file.  Small
#: enough that a reader's working set (one segment) stays modest, large
#: enough that a 10^4-event cell trace lands in a handful of files.
DEFAULT_SEGMENT_EVENTS = 4096

_INDEX_FILE = "index.json"
_META_FILE = "meta.json"
_SEGMENT_PREFIX = "segment-"


def _segment_name(number: int) -> str:
    return f"{_SEGMENT_PREFIX}{number:08d}.jsonl"


def _atomic_write_json(
    path: Path, payload: Dict[str, Any], fsync: bool = False
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.write("\n")
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class EventStream:
    """One append-only stream of versioned events with a commit index.

    Pass a :class:`~repro.obs.metrics.MetricsRegistry` to count appended
    events (``store.events_appended``), finalized segment files
    (``store.segments_written``) and v1-era upcasts applied while
    reading (``store.upcasts_applied``).
    """

    def __init__(
        self,
        path: Union[str, Path],
        segment_events: int = DEFAULT_SEGMENT_EVENTS,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if segment_events <= 0:
            raise ValueError(
                f"segment_events must be > 0: {segment_events!r}"
            )
        self.path = Path(path)
        self.segment_events = int(segment_events)
        self.metrics = metrics
        self._handle: Optional[IO[str]] = None
        #: Segments already covered by the last commit, plus the live
        #: tail of the active segment: [{file, events, bytes, first_seq}].
        self._index = self._load_index()
        #: Events appended but not yet committed (live only in the
        #: active segment file beyond its committed byte offset).
        self._pending = 0
        self._reconciled = False

    # -- index ----------------------------------------------------------

    def _load_index(self) -> Dict[str, Any]:
        index_path = self.path / _INDEX_FILE
        if index_path.exists():
            with open(index_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        return {
            "schema": SCHEMA_VERSION,
            "segments": [],
            "committed": 0,
            "complete": False,
        }

    @property
    def committed_events(self) -> int:
        """Events visible to readers (appends before the last commit)."""
        return int(self._index["committed"])

    @property
    def is_complete(self) -> bool:
        """Whether the stream was committed as finished."""
        return bool(self._index["complete"])

    @property
    def next_seq(self) -> int:
        return self.committed_events + self._pending

    def segments(self) -> List[Dict[str, Any]]:
        """The committed segment descriptors, in stream order."""
        return [dict(entry) for entry in self._index["segments"]]

    def exists(self) -> bool:
        return (self.path / _INDEX_FILE).exists()

    # -- append path ----------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _reconcile(self) -> None:
        """Truncate uncommitted tails so appends resume at the index.

        Only the *last* committed segment can carry a torn tail (the
        appender writes one segment at a time); later segment files
        that never reached a commit are removed outright.
        """
        if self._reconciled:
            return
        self._reconciled = True
        segments = self._index["segments"]
        known = {entry["file"] for entry in segments}
        if self.path.exists():
            for stray in sorted(self.path.glob(f"{_SEGMENT_PREFIX}*.jsonl")):
                if stray.name not in known:
                    stray.unlink()
        if segments:
            last = segments[-1]
            last_path = self.path / last["file"]
            if last_path.exists() and last_path.stat().st_size > last["bytes"]:
                with open(last_path, "r+b") as handle:
                    handle.truncate(last["bytes"])

    def _open_segment(self) -> IO[str]:
        segments = self._index["segments"]
        if (
            segments
            and segments[-1]["events"] + self._pending_in_active()
            < self.segment_events
        ):
            name = segments[-1]["file"]
        else:
            name = _segment_name(len(segments))
            segments.append(
                {
                    "file": name,
                    "events": 0,
                    "bytes": 0,
                    "first_seq": self.next_seq,
                }
            )
            self._count("store.segments_written")
        self.path.mkdir(parents=True, exist_ok=True)
        return open(self.path / name, "a", encoding="utf-8")

    def _pending_in_active(self) -> int:
        # All pending events live in the active (last) segment: rotation
        # commits first (see append), so _pending never spans segments.
        return self._pending

    def append(self, kind: str, fields: Mapping[str, Any]) -> int:
        """Append one event; returns its sequence number.

        Appends are buffered; call :meth:`commit` to make them visible
        to readers (and durable across a reopen).
        """
        if self.is_complete:
            raise ValueError(
                f"stream {self.path} is complete; appends are closed"
            )
        self._reconcile()
        segments = self._index["segments"]
        if self._handle is not None and segments and (
            segments[-1]["events"] + self._pending >= self.segment_events
        ):
            # Rotate: committing first keeps every pending event inside
            # one (the active) segment, which is what lets commit update
            # a single descriptor.
            self.commit()
            self._handle.close()
            self._handle = None
        if self._handle is None:
            self._handle = self._open_segment()
        seq = self.next_seq
        event = {"seq": seq, "kind": kind}
        event.update(fields)
        self._handle.write(encode_event(event))
        self._handle.write("\n")
        self._pending += 1
        self._count("store.events_appended")
        return seq

    def append_batch(
        self, events: List[Tuple[str, Mapping[str, Any]]]
    ) -> int:
        """Append a batch of ``(kind, fields)`` events in one pass.

        Semantically identical to calling :meth:`append` per event —
        same sequence numbers, same rotation points (committing first,
        so pending events never span segments) — but the encoded lines
        are written in per-segment slabs, amortising the write-call and
        bookkeeping cost across the batch (``store.batch_appends``
        counts calls).  Returns the number of events appended; like
        :meth:`append`, nothing is visible to readers until
        :meth:`commit`.
        """
        if self.is_complete:
            raise ValueError(
                f"stream {self.path} is complete; appends are closed"
            )
        self._reconcile()
        first = self.next_seq
        encoded: List[str] = []
        for offset, (kind, fields) in enumerate(events):
            event = {"seq": first + offset, "kind": kind}
            event.update(fields)
            encoded.append(encode_event(event) + "\n")
        total = len(encoded)
        if not total:
            return 0
        cursor = 0
        while cursor < total:
            segments = self._index["segments"]
            if self._handle is not None and segments and (
                segments[-1]["events"] + self._pending
                >= self.segment_events
            ):
                self.commit()
                self._handle.close()
                self._handle = None
            if self._handle is None:
                self._handle = self._open_segment()
            segments = self._index["segments"]
            room = self.segment_events - (
                segments[-1]["events"] + self._pending
            )
            take = min(room, total - cursor)
            self._handle.write("".join(encoded[cursor:cursor + take]))
            self._pending += take
            cursor += take
        self._count("store.events_appended", total)
        self._count("store.batch_appends")
        return total

    def commit(self, complete: bool = False, fsync: bool = False) -> None:
        """Publish all pending appends (atomic index rewrite).

        ``complete=True`` seals the stream: readers see it as finished
        and further appends raise.  ``fsync=True`` forces the segment
        data and the index to disk before the commit is reported — the
        batched group commit pays one fsync per *chunk* of cells, where
        the per-cell path relies on the OS flushing each tiny stream.
        """
        if self._handle is not None:
            self._handle.flush()
            if fsync:
                os.fsync(self._handle.fileno())
        segments = self._index["segments"]
        if self._pending:
            last = segments[-1]
            last["events"] += self._pending
            last["bytes"] = (self.path / last["file"]).stat().st_size
            self._index["committed"] += self._pending
            self._pending = 0
        if complete:
            self._index["complete"] = True
        _atomic_write_json(
            self.path / _INDEX_FILE, self._index, fsync=fsync
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- read path ------------------------------------------------------

    def read(self, start_seq: int = 0) -> Iterator[Dict[str, Any]]:
        """Stream the committed logical events from ``start_seq`` on.

        One segment line is materialised at a time — peak memory is
        O(segment line), never O(stream) — and every line passes
        through the upcaster chain, so v1-era segments read back in
        current logical form (``store.upcasts_applied`` counts them).
        """
        for entry in self._index["segments"]:
            first = int(entry["first_seq"])
            events = int(entry["events"])
            if events == 0 or first + events <= start_seq:
                continue
            with open(
                self.path / entry["file"], "r", encoding="utf-8"
            ) as handle:
                consumed = 0
                for line in handle:
                    if consumed >= events:
                        break  # uncommitted tail
                    line = line.strip()
                    if not line:
                        continue
                    seq = first + consumed
                    consumed += 1
                    if seq < start_seq:
                        continue
                    event, version = decode_line(line)
                    if version < SCHEMA_VERSION:
                        self._count("store.upcasts_applied")
                    yield event

    def result(self) -> Tuple[bool, Any]:
        """The committed cell result, if the stream carries one.

        Scans backwards segment by segment — the ``cell_result`` event
        is by construction the last committed one.
        """
        for entry in reversed(self._index["segments"]):
            first = int(entry["first_seq"])
            events = int(entry["events"])
            if events == 0:
                continue
            found = None
            for event in self.read(start_seq=first):
                if event["kind"] == CELL_RESULT_KIND:
                    found = event
            if found is not None:
                return True, result_from_event(found)
            return False, None
        return False, None

    # -- maintenance ----------------------------------------------------

    def compact(self) -> Tuple[int, int]:
        """Merge the committed segments into one; returns
        ``(segments_before, segments_after)``.

        Events are re-encoded through the current envelope (upcasting
        v1-era lines in place); logical content is unchanged.  The
        index is rewritten last, so a crash mid-compaction leaves the
        old index pointing at the old (still present) segments.
        """
        self.close()
        old = [entry["file"] for entry in self._index["segments"]]
        if len(old) <= 1:
            return len(old), len(old)
        merged_name = _segment_name(0) + ".compact"
        merged_path = self.path / merged_name
        events = 0
        with open(merged_path, "w", encoding="utf-8") as handle:
            for event in self.read():
                handle.write(encode_event(event))
                handle.write("\n")
                events += 1
        final_name = _segment_name(0)
        replaced = self.path / final_name
        os.replace(merged_path, replaced)
        self._index["segments"] = [
            {
                "file": final_name,
                "events": events,
                "bytes": replaced.stat().st_size,
                "first_seq": 0,
            }
        ]
        self._index["committed"] = events
        _atomic_write_json(self.path / _INDEX_FILE, self._index)
        self._count("store.segments_written")
        for name in old:
            if name != final_name:
                try:
                    (self.path / name).unlink()
                except OSError:
                    pass
        return len(old), 1

    def export(self, output: Union[str, Path]) -> int:
        """Write the stream back out as one canonical JSONL trace file.

        Every line is a current-version envelope, so exporting the same
        logical events always produces the same bytes — the merged-
        trace determinism property, extended to the log path.
        """
        output = Path(output)
        output.parent.mkdir(parents=True, exist_ok=True)
        count = 0
        with open(output, "w", encoding="utf-8") as handle:
            for event in self.read():
                handle.write(encode_event(event))
                handle.write("\n")
                count += 1
        return count

    def __repr__(self) -> str:
        return (
            f"EventStream({str(self.path)!r}, "
            f"committed={self.committed_events}, "
            f"complete={self.is_complete})"
        )


def canonical_stream_key(experiment: str, key: Mapping[str, Any]) -> str:
    """Stable serialisation of a stream identity.

    Mirrors the result cache's canonicalisation (sorted-key JSON) minus
    the cache/lint version salts: the log is append-only and versioned
    per *event* (the envelope schema), so a ruleset bump must not
    orphan committed cells — resume correctness is re-established by
    the store's own schema versioning and the upcaster chain.
    """
    payload = {
        "experiment": experiment,
        "key": {name: key[name] for name in sorted(key)},
    }
    return json.dumps(payload, sort_keys=True, default=repr)


class RunStore:
    """Event-sourced store of experiment runs: one stream per cell.

    The store is keyed exactly like the result cache —
    ``(experiment, cell key)``, the key carrying the seed — so every
    projection and resume decision shares the cache's aliasing
    guarantees (and the REPRO201 completeness rule covers both).
    """

    def __init__(
        self,
        root: Union[str, Path],
        metrics: Optional[MetricsRegistry] = None,
        segment_events: int = DEFAULT_SEGMENT_EVENTS,
    ):
        self.root = Path(root)
        self.metrics = metrics
        self.segment_events = int(segment_events)

    def _digest(self, experiment: str, key: Mapping[str, Any]) -> str:
        return hashlib.sha256(
            canonical_stream_key(experiment, key).encode("utf-8")
        ).hexdigest()

    def stream_path(self, experiment: str, key: Mapping[str, Any]) -> Path:
        return self.root / experiment / self._digest(experiment, key)

    def stream(
        self, experiment: str, key: Mapping[str, Any]
    ) -> EventStream:
        """The (possibly new) stream for one cell; writes ``meta.json``
        on first use so humans and ``repro store project`` can map a
        digest back to its key."""
        path = self.stream_path(experiment, key)
        stream = EventStream(
            path,
            segment_events=self.segment_events,
            metrics=self.metrics,
        )
        meta_path = path / _META_FILE
        if not meta_path.exists():
            _atomic_write_json(
                meta_path,
                {
                    "experiment": experiment,
                    "key": {
                        name: _json_safe(key[name]) for name in sorted(key)
                    },
                    "schema": SCHEMA_VERSION,
                },
            )
        return stream

    # -- cell results (the resume path) ---------------------------------

    def load_result(
        self, experiment: str, key: Mapping[str, Any]
    ) -> Tuple[bool, Any]:
        """Fetch a committed cell result; ``(hit, value)``."""
        path = self.stream_path(experiment, key)
        if not (path / _INDEX_FILE).exists():
            return False, None
        stream = EventStream(path, metrics=self.metrics)
        if not stream.is_complete:
            return False, None
        try:
            return stream.result()
        except Exception:
            # A corrupt snapshot must degrade to a re-run, never poison
            # the grid (mirrors the cache's corrupt-entry policy).
            return False, None

    def commit_result(
        self, experiment: str, key: Mapping[str, Any], value: Any
    ) -> None:
        """Append the cell's result snapshot and seal the stream."""
        stream = self.stream(experiment, key)
        if stream.is_complete:
            return
        with stream:
            stream.append(CELL_RESULT_KIND, result_event_fields(value))
            stream.commit(complete=True)

    # -- group results (the batched-commit path) -------------------------

    def group_key(
        self,
        experiment: str,
        keys: List[Optional[Mapping[str, Any]]],
    ) -> Dict[str, str]:
        """Stream key of a batched group: a digest over its member keys.

        Chunk membership is deterministic (grid order, fixed chunk
        size), so an interrupted run re-derives the same digest on
        resume and finds its committed chunks.
        """
        joined = "\n".join(
            canonical_stream_key(experiment, key)
            for key in keys
            if key is not None
        )
        return {
            "cells": hashlib.sha256(joined.encode("utf-8")).hexdigest()
        }

    def commit_group_results(
        self,
        experiment: str,
        keys: List[Optional[Mapping[str, Any]]],
        values: List[Any],
    ) -> None:
        """Commit a whole group of cell results as one sealed stream.

        One ``cell_result`` event per member (each carrying its cell's
        canonical key, so the group stream can serve per-cell lookups),
        batch-appended and sealed with a single *fsync'd* commit — the
        amortised durability write of the batched grid path
        (``store.batch_commits`` counts chunks).  The group stream's
        ``meta.json`` records the member count under ``"cells"`` so
        stream counting tools can weigh it correctly.
        """
        gkey = self.group_key(experiment, keys)
        path = self.stream_path(experiment, gkey)
        stream = EventStream(
            path,
            segment_events=self.segment_events,
            metrics=self.metrics,
        )
        if stream.is_complete:
            return
        meta_path = path / _META_FILE
        if not meta_path.exists():
            _atomic_write_json(
                meta_path,
                {
                    "experiment": experiment,
                    "key": dict(gkey),
                    "cells": len(values),
                    "schema": SCHEMA_VERSION,
                },
            )
        events: List[Tuple[str, Mapping[str, Any]]] = []
        for key, value in zip(keys, values):
            fields = dict(result_event_fields(value))
            if key is not None:
                fields["cell"] = canonical_stream_key(experiment, key)
            events.append((CELL_RESULT_KIND, fields))
        with stream:
            stream.append_batch(events)
            stream.commit(complete=True, fsync=True)
        if self.metrics is not None:
            self.metrics.counter("store.batch_commits").inc()

    def load_group_results(
        self,
        experiment: str,
        keys: List[Optional[Mapping[str, Any]]],
    ) -> Tuple[bool, Optional[List[Any]]]:
        """Fetch a committed group's results; ``(hit, values)``.

        A hit requires the group stream to be sealed *and* to cover
        every requested member key; anything less (or a corrupt
        snapshot) degrades to a miss and a re-run, mirroring
        :meth:`load_result`.
        """
        gkey = self.group_key(experiment, keys)
        path = self.stream_path(experiment, gkey)
        if not (path / _INDEX_FILE).exists():
            return False, None
        stream = EventStream(path, metrics=self.metrics)
        if not stream.is_complete:
            return False, None
        try:
            by_cell: Dict[str, Any] = {}
            for event in stream.read():
                if event["kind"] == CELL_RESULT_KIND and "cell" in event:
                    by_cell[event["cell"]] = result_from_event(event)
            values: List[Any] = []
            for key in keys:
                if key is None:
                    return False, None
                canonical = canonical_stream_key(experiment, key)
                if canonical not in by_cell:
                    return False, None
                values.append(by_cell[canonical])
            return True, values
        except Exception:
            return False, None

    # -- enumeration ----------------------------------------------------

    def experiments(self) -> List[str]:
        if not self.root.exists():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir()
        )

    def stream_paths(self, experiment: Optional[str] = None) -> List[Path]:
        """Every stream directory (sorted), optionally per experiment."""
        names = (
            [experiment] if experiment is not None else self.experiments()
        )
        paths: List[Path] = []
        for name in names:
            base = self.root / name
            if not base.is_dir():
                continue
            paths.extend(
                sorted(
                    entry
                    for entry in base.iterdir()
                    if (entry / _INDEX_FILE).exists()
                )
            )
        return paths

    def open(self, path: Union[str, Path]) -> EventStream:
        """An existing stream by directory path."""
        return EventStream(
            Path(path),
            segment_events=self.segment_events,
            metrics=self.metrics,
        )

    def meta(self, path: Union[str, Path]) -> Dict[str, Any]:
        meta_path = Path(path) / _META_FILE
        if not meta_path.exists():
            return {}
        with open(meta_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    # -- trace import (the log path for merged traces) ------------------

    def import_trace(
        self,
        trace_path: Union[str, Path],
        experiment: str,
        key: Mapping[str, Any],
    ) -> EventStream:
        """Feed a JSONL trace file into a stream (v1 or v2 lines).

        Events pass through the upcaster chain on the way in, so a
        PR 3-era trace lands in the log in current logical form.
        Returns the sealed stream.
        """
        from repro.obs.trace import read_trace

        stream = self.stream(experiment, key)
        if stream.is_complete:
            return stream
        with stream:
            for event in read_trace(trace_path):
                fields = {
                    name: value
                    for name, value in event.items()
                    if name not in ("seq", "kind")
                }
                stream.append(event["kind"], fields)
            stream.commit(complete=True)
        return stream

    def compact(self, experiment: Optional[str] = None) -> Tuple[int, int]:
        """Compact every stream; returns total ``(before, after)``."""
        before = after = 0
        for path in self.stream_paths(experiment):
            b, a = self.open(path).compact()
            before += b
            after += a
        return before, after

    def __repr__(self) -> str:
        return f"RunStore(root={str(self.root)!r})"


def _json_safe(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except TypeError:
        return repr(value)
