"""Maintenance CLI for the event-sourced run store.

Usage (``python -m repro.store``)::

    python -m repro.store compact --store PATH [--experiment NAME]
    python -m repro.store project --store PATH PROJECTION
                                  [--experiment NAME] [--no-checkpoint]
    python -m repro.store resume --store PATH EXPERIMENT [ARG ...]
    python -m repro.store check-resume EXPERIMENT [--jobs N]
                                  [--backend B] [--kill-after K] ...

* ``compact`` merges every stream's committed segments into one file
  (logical content unchanged; v1-era lines are upcast in place);
* ``project`` folds a built-in projection (``metrics_rollup``,
  ``table_rows``, ``confidence``, ``cell_result``) over every stream
  and prints one JSON object per stream — incremental via checkpoints,
  so an already-projected stream replays only its new events;
* ``resume`` re-runs an experiment with the store attached — committed
  cells are discovered from the log and skipped, so an interrupted grid
  picks up where it stopped (a thin alias for
  ``repro-experiments EXPERIMENT --store PATH``);
* ``check-resume`` is the *determinism harness* CI runs: it executes a
  grid in a subprocess, SIGTERMs it after K cells have committed,
  resumes from the half-written store, and byte-compares the rendered
  output against an uninterrupted baseline run.  Exit 0 means the
  kill-and-resume run is bit-identical to the straight-through run.
"""

import argparse
import base64
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.store.log import RunStore
from repro.store.projections import BUILTIN_PROJECTIONS, catch_up

#: Normalises the experiment banner line, whose elapsed-seconds field is
#: wall-clock and therefore differs between otherwise identical runs.
_BANNER = re.compile(r"^(=== \S+) \(seed=\d+, [0-9.]+s\) ===$")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description=(
            "Inspect and maintain the event-sourced run store "
            "(append-only per-cell event logs with CQRS projections)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compact = commands.add_parser(
        "compact", help="merge each stream's segments into one file"
    )
    compact.add_argument("--store", required=True, metavar="PATH")
    compact.add_argument("--experiment", default=None, metavar="NAME")

    project = commands.add_parser(
        "project", help="fold a projection over every stream (JSON out)"
    )
    project.add_argument(
        "projection", choices=sorted(BUILTIN_PROJECTIONS)
    )
    project.add_argument("--store", required=True, metavar="PATH")
    project.add_argument("--experiment", default=None, metavar="NAME")
    project.add_argument(
        "--no-checkpoint", action="store_true",
        help="fold from scratch without writing checkpoint files",
    )

    resume = commands.add_parser(
        "resume",
        help="re-run an experiment with the store attached "
             "(committed cells are skipped)",
    )
    resume.add_argument("--store", required=True, metavar="PATH")
    resume.add_argument("experiment")
    resume.add_argument(
        "extra", nargs=argparse.REMAINDER,
        help="passed through to repro-experiments (e.g. --fast --jobs 4)",
    )

    check = commands.add_parser(
        "check-resume",
        help="kill a grid run mid-flight, resume it, and verify the "
             "output is bit-identical to an uninterrupted run",
    )
    check.add_argument("experiment")
    check.add_argument("--jobs", type=int, default=1)
    check.add_argument(
        "--backend", choices=("event", "columnar", "auto"), default="auto"
    )
    check.add_argument(
        "--kill-after", type=int, default=2, metavar="K",
        help="SIGTERM the run once K cells have committed (default 2)",
    )
    check.add_argument("--seed", type=int, default=None)
    check.add_argument("--requests", type=int, default=None, metavar="N")
    check.add_argument(
        "--full", action="store_true",
        help="run at paper sizes (default: --fast smoke sizes)",
    )
    check.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-subprocess wall-clock budget in seconds",
    )
    check.add_argument(
        "--keep", action="store_true",
        help="keep the scratch store directories for inspection",
    )
    check.add_argument(
        "--batch-max-cells", type=int, default=None, metavar="C",
        help=(
            "cap batched group chunks at C cells in the child runs "
            "(exports REPRO_BATCH_MAX_CELLS) so the kill lands on a "
            "batch commit boundary even in small grids"
        ),
    )
    return parser


def _json_ready(value: Any) -> Any:
    """Best-effort JSON form of a projection result."""
    if isinstance(value, bytes):
        return {
            "bytes": len(value),
            "base64": base64.b64encode(value).decode("ascii"),
        }
    try:
        json.dumps(value)
        return value
    except TypeError:
        return repr(value)


def _cmd_compact(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    before, after = store.compact(args.experiment)
    print(f"compacted {before} segment(s) -> {after}")
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    projection_cls = BUILTIN_PROJECTIONS[args.projection]
    paths = store.stream_paths(args.experiment)
    for path in paths:
        stream = store.open(path)
        result = catch_up(
            stream,
            projection_cls(),
            checkpoint=not args.no_checkpoint,
        )
        record = {
            "stream": str(path),
            "meta": store.meta(path),
            "projection": args.projection,
            "result": _json_ready(result),
        }
        print(json.dumps(record, sort_keys=True))
    if not paths:
        print(
            f"no streams under {store.root}"
            + (f" for experiment {args.experiment!r}" if args.experiment
               else ""),
            file=sys.stderr,
        )
        return 1
    return 0


def _experiments_cli(cmd: Sequence[str]) -> List[str]:
    return [sys.executable, "-m", "repro.experiments.cli", *cmd]


def _subprocess_env() -> Dict[str, str]:
    # Make the repro package importable in children even when it is run
    # from a source tree (PYTHONPATH=src) rather than installed.
    import repro

    package_parent = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if package_parent not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_parent + (os.pathsep + existing if existing else "")
        )
    return env


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.experiments.cli import main as experiments_main

    extra = [arg for arg in args.extra if arg != "--"]
    return experiments_main(
        [args.experiment, "--store", args.store, *extra]
    )


def _complete_streams(root: Path) -> int:
    """Committed *cells* under a store root.

    A per-cell stream counts 1; a batched group stream counts the
    ``cells`` field of its ``meta.json`` (the whole chunk committed as
    one stream), so ``--kill-after`` thresholds mean the same number of
    cells whether or not the victim runs batched.
    """
    count = 0
    for index_path in root.glob("*/*/index.json"):
        try:
            with open(index_path, "r", encoding="utf-8") as handle:
                if not json.load(handle).get("complete"):
                    continue
        except (OSError, ValueError):
            continue
        cells = 1
        meta_path = index_path.parent / "meta.json"
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                cells = int(json.load(handle).get("cells", 1))
        except (OSError, ValueError, TypeError):
            cells = 1
        count += cells
    return count


def _normalise_output(text: str) -> str:
    lines = []
    for line in text.splitlines():
        banner = _BANNER.match(line)
        lines.append(f"{banner.group(1)} ===" if banner else line)
    return "\n".join(lines)


def _run_to_completion(
    cmd: List[str], env: Dict[str, str], timeout: float
) -> "subprocess.CompletedProcess[str]":
    return subprocess.run(
        cmd,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
        check=False,
    )


def _cmd_check_resume(args: argparse.Namespace) -> int:
    env = _subprocess_env()
    if args.batch_max_cells is not None:
        env["REPRO_BATCH_MAX_CELLS"] = str(args.batch_max_cells)
    scratch = Path(tempfile.mkdtemp(prefix="repro-check-resume-"))
    store_killed = scratch / "store-killed"
    store_baseline = scratch / "store-baseline"
    base_cmd = [args.experiment, "--no-cache", "--jobs", str(args.jobs),
                "--backend", args.backend]
    if not args.full:
        base_cmd.append("--fast")
    if args.seed is not None:
        base_cmd += ["--seed", str(args.seed)]
    if args.requests is not None:
        base_cmd += ["--requests", str(args.requests)]

    # 1. Straight-through baseline (its own fresh store, never killed).
    baseline = _run_to_completion(
        _experiments_cli(base_cmd + ["--store", str(store_baseline)]),
        env,
        args.timeout,
    )
    if baseline.returncode != 0:
        print("baseline run failed:", file=sys.stderr)
        sys.stderr.write(baseline.stderr)
        return 2

    # 2. Interrupted run: SIGTERM the whole process group once
    #    --kill-after cells have committed to the store.
    victim = subprocess.Popen(
        _experiments_cli(base_cmd + ["--store", str(store_killed)]),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    deadline = time.time() + args.timeout
    killed = False
    while victim.poll() is None:
        if _complete_streams(store_killed) >= args.kill_after:
            os.killpg(victim.pid, signal.SIGTERM)
            killed = True
            break
        if time.time() > deadline:
            os.killpg(victim.pid, signal.SIGKILL)
            print("interrupted run exceeded --timeout", file=sys.stderr)
            return 2
        time.sleep(0.02)
    victim.wait(timeout=60.0)
    committed = _complete_streams(store_killed)
    if killed:
        print(
            f"killed run after {committed} committed cell(s) "
            f"(SIGTERM at >= {args.kill_after})"
        )
    else:
        print(
            f"run completed ({committed} cells) before reaching "
            f"--kill-after {args.kill_after}; resume check degenerates "
            f"to a full replay"
        )

    # 3. Resume from the half-written store.
    resumed = _run_to_completion(
        _experiments_cli(base_cmd + ["--store", str(store_killed)]),
        env,
        args.timeout,
    )
    if resumed.returncode != 0:
        print("resumed run failed:", file=sys.stderr)
        sys.stderr.write(resumed.stderr)
        return 2

    ok = _normalise_output(resumed.stdout) == _normalise_output(
        baseline.stdout
    )
    if ok:
        print(
            f"resume determinism OK: interrupted+resumed output is "
            f"bit-identical to the uninterrupted run "
            f"({args.experiment}, jobs={args.jobs}, "
            f"backend={args.backend})"
        )
    else:
        print(
            "resume determinism FAILED: resumed output differs from "
            "the uninterrupted baseline",
            file=sys.stderr,
        )
        sys.stderr.write(
            "--- baseline ---\n" + baseline.stdout
            + "\n--- resumed ---\n" + resumed.stdout
        )
    if args.keep:
        print(f"scratch stores kept under {scratch}")
    else:
        import shutil

        shutil.rmtree(scratch, ignore_errors=True)
    return 0 if ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "compact":
            return _cmd_compact(args)
        if args.command == "project":
            return _cmd_project(args)
        if args.command == "resume":
            return _cmd_resume(args)
        return _cmd_check_resume(args)
    except BrokenPipeError:
        # Output truncated downstream (e.g. `| head`) — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
