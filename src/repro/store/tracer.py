"""Tracer that appends into an event stream (``repro.store``).

:class:`StreamTracer` is the store-side twin of
:class:`~repro.obs.trace.JsonlTracer`: the same ``emit(kind, **fields)``
surface every instrumented component already speaks, but events land as
versioned envelopes in a segmented :class:`~repro.store.log.EventStream`
instead of one flat file.  A cell traced through a stream can be
exported back to canonical JSONL (:meth:`EventStream.export`) —
byte-identical to what the flat tracer would have written for the same
logical events — so the PR 3 merged-trace determinism guarantee extends
unchanged to the log path.

Commit cadence: events are committed in segment-sized batches (the
rotation commit) and once more on :meth:`close`; ``complete_on_close``
seals the stream so readers and resume logic see it as finished.
"""

from typing import Any, Optional, Union

from repro.obs.trace import Tracer
from repro.store.log import EventStream


class StreamTracer(Tracer):
    """Emit trace events into an :class:`EventStream`."""

    enabled = True

    def __init__(
        self,
        stream: EventStream,
        cell: str = "",
        complete_on_close: bool = True,
    ):
        self.stream = stream
        self.cell = cell
        self.complete_on_close = complete_on_close
        self._closed = False

    def emit(self, kind: str, **fields: Any) -> None:
        if self._closed:
            raise ValueError(
                f"stream tracer for {self.stream.path} is closed"
            )
        if self.cell:
            fields = {"cell": self.cell, **fields}
        self.stream.append(kind, fields)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.stream.commit(complete=self.complete_on_close)
        self.stream.close()
