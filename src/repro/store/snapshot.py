"""Canonical byte encoding of cell results (``repro.store``).

A completed cell's reduced result exists in two durable places: the
on-disk result cache (:mod:`repro.runtime.cache`) and, under a run
store, the ``cell_result`` event committed to the cell's stream.  Both
sides encode through *this* module, so a cache hit and a log catch-up
materialise **the same bytes** — the property
``tests/store/test_projections.py`` pins, and the reason a log-backed
snapshot can replace a cache entry without a bit of drift.

The encoding is the cache's historical one (pickle at the highest
protocol), so PR 1-era cache entries stay readable.
"""

import base64
import hashlib
import pickle
from typing import Any, Dict

#: Event kind under which a stream commits its cell's reduced result.
CELL_RESULT_KIND = "cell_result"


def encode_result(value: Any) -> bytes:
    """The canonical byte form of a cell result."""
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def decode_result(blob: bytes) -> Any:
    """Inverse of :func:`encode_result`."""
    return pickle.loads(blob)


def result_event_fields(value: Any) -> Dict[str, Any]:
    """The ``cell_result`` event payload for one reduced result.

    The snapshot bytes ride in the event base64-encoded (segments are
    JSONL); ``sha256`` lets readers verify the blob before unpickling
    and gives diffs a cheap equality proxy.
    """
    blob = encode_result(value)
    return {
        "result": base64.b64encode(blob).decode("ascii"),
        "sha256": hashlib.sha256(blob).hexdigest(),
        "bytes": len(blob),
    }


def result_from_event(event: Dict[str, Any]) -> Any:
    """Decode a ``cell_result`` event back to the result object."""
    return decode_result(result_event_bytes(event))


def result_event_bytes(event: Dict[str, Any]) -> bytes:
    """The snapshot bytes a ``cell_result`` event carries (verified)."""
    blob = base64.b64decode(event["result"])
    digest = hashlib.sha256(blob).hexdigest()
    if digest != event.get("sha256", digest):
        raise ValueError(
            f"cell_result snapshot corrupt: sha256 {digest} != "
            f"{event['sha256']}"
        )
    return blob
