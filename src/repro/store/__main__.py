"""``python -m repro.store`` — run-store maintenance CLI."""

import sys

from repro.store.cli import main

if __name__ == "__main__":
    sys.exit(main())
