"""Event-sourced run store: append-only log + CQRS projections.

``repro.store`` turns every experiment run into durable, replayable
state.  Each grid cell — identified by ``(experiment, cell key)``, the
key carrying the seed — owns an append-only *stream* of schema-
versioned event envelopes spread over bounded segment files with a
commit/offset index (:mod:`~repro.store.log`); read models are
*projections*, checkpointed folds that catch up incrementally from the
log instead of recomputing (:mod:`~repro.store.projections`).

What the layers above get from it:

* **resumable grids** — :func:`repro.runtime.parallel.run_cells`
  commits each cell's result to its stream as it completes, and a
  rerun discovers the committed cells and skips them
  (``store.resume_skipped_cells``): a grid interrupted after *k* cells
  resumes and finishes bit-identical to an uninterrupted run;
* **snapshot/cache unification** — cache entries and ``cell_result``
  events encode through one codec (:mod:`~repro.store.snapshot`), so a
  cache hit and a log catch-up are the same bytes;
* **lossless history** — tracers emit versioned envelopes and readers
  upcast (:mod:`repro.obs.envelope`), so PR 3-era v1 traces read
  back exactly as :mod:`repro.obs.diff` always saw them;
* **streaming diff** — divergence localisation is a projection over
  two logs, O(segment) memory, never O(file).

CLI: ``python -m repro.store compact|project|resume|check-resume``;
the experiments CLI grows ``--store PATH``.
"""

from repro.obs.envelope import (
    SCHEMA_VERSION,
    UPCASTERS,
    decode_event,
    decode_line,
    encode_event,
)
from repro.store.log import (
    DEFAULT_SEGMENT_EVENTS,
    EventStream,
    RunStore,
    canonical_stream_key,
)
from repro.store.projections import (
    BUILTIN_PROJECTIONS,
    CellResultProjection,
    ConfidenceTrajectoryProjection,
    MetricsRollupProjection,
    Projection,
    TableRowsProjection,
    catch_up,
    first_divergence,
)
from repro.store.snapshot import (
    CELL_RESULT_KIND,
    decode_result,
    encode_result,
)
from repro.store.tracer import StreamTracer

__all__ = [
    "BUILTIN_PROJECTIONS",
    "CELL_RESULT_KIND",
    "CellResultProjection",
    "ConfidenceTrajectoryProjection",
    "DEFAULT_SEGMENT_EVENTS",
    "EventStream",
    "MetricsRollupProjection",
    "Projection",
    "RunStore",
    "SCHEMA_VERSION",
    "StreamTracer",
    "TableRowsProjection",
    "UPCASTERS",
    "canonical_stream_key",
    "catch_up",
    "decode_event",
    "decode_line",
    "decode_result",
    "encode_event",
    "encode_result",
    "first_divergence",
]
