"""CQRS projections: incremental folds over event streams.

A *projection* is a pure fold — ``initial() -> state``,
``apply(state, event) -> state``, ``result(state)`` — materialising a
read model from the append-only log: metric rollups, Table-5/6 rows,
Bayesian confidence trajectories, the cell-result snapshot itself.

:func:`catch_up` is the incremental driver: it loads the projection's
checkpointed ``(position, state)`` from the stream's ``projections/``
directory, replays only the events committed *since* that position
(counted by ``store.projection_catchup_events``), and checkpoints the
new position — so re-projecting an already-seen stream is O(new
events), not O(stream).  Checkpoint state must be picklable; the file
is content-salted with the projection name and the envelope schema, so
a schema bump re-folds from scratch instead of resuming a stale state.
"""

import base64
import json
import pickle
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.envelope import SCHEMA_VERSION
from repro.obs.metrics import MetricsRegistry
from repro.store.log import EventStream
from repro.store.snapshot import CELL_RESULT_KIND, result_event_bytes

_CHECKPOINT_DIR = "projections"


class Projection:
    """Base fold; subclasses override the three hooks.

    ``name`` keys the checkpoint file — change it (or bump
    :data:`~repro.obs.envelope.SCHEMA_VERSION`) when the fold's
    semantics change, so stale checkpointed states are discarded.
    """

    name = "projection"

    def initial(self) -> Any:
        return None

    def apply(self, state: Any, event: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def result(self, state: Any) -> Any:
        """Finalize the folded state into the read model."""
        return state


def _checkpoint_path(stream: EventStream, projection: Projection) -> Path:
    return stream.path / _CHECKPOINT_DIR / f"{projection.name}.json"


def _load_checkpoint(
    stream: EventStream, projection: Projection
) -> Tuple[int, Any]:
    path = _checkpoint_path(stream, projection)
    if not path.exists():
        return 0, projection.initial()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("schema") != SCHEMA_VERSION:
            return 0, projection.initial()
        state = pickle.loads(base64.b64decode(payload["state"]))
        return int(payload["position"]), state
    except Exception:
        # A torn checkpoint re-folds from the log — the log is the
        # source of truth, checkpoints are only an accelerator.
        return 0, projection.initial()


def _save_checkpoint(
    stream: EventStream, projection: Projection, position: int, state: Any
) -> None:
    from repro.store.log import _atomic_write_json

    _atomic_write_json(
        _checkpoint_path(stream, projection),
        {
            "schema": SCHEMA_VERSION,
            "position": position,
            "state": base64.b64encode(pickle.dumps(state)).decode("ascii"),
        },
    )


def catch_up(
    stream: EventStream,
    projection: Projection,
    metrics: Optional[MetricsRegistry] = None,
    checkpoint: bool = True,
) -> Any:
    """Fold a projection over a stream, incrementally.

    Replays only the events past the stored checkpoint position, saves
    the new ``(position, state)`` and returns
    ``projection.result(state)``.  ``checkpoint=False`` folds from
    scratch without touching checkpoint files (read-only media).
    """
    if checkpoint:
        position, state = _load_checkpoint(stream, projection)
        if position > stream.committed_events:
            # Checkpoint from a longer past life of this path (e.g. a
            # wiped and re-created stream): distrust it entirely.
            position, state = 0, projection.initial()
    else:
        position, state = 0, projection.initial()
    replayed = 0
    for event in stream.read(start_seq=position):
        state = projection.apply(state, event)
        replayed += 1
    position += replayed
    if metrics is not None and replayed:
        metrics.counter("store.projection_catchup_events").inc(replayed)
    if checkpoint and replayed:
        _save_checkpoint(stream, projection, position, state)
    return projection.result(state)


# ----------------------------------------------------------------------
# Built-in projections
# ----------------------------------------------------------------------


class MetricsRollupProjection(Projection):
    """Event counts per kind plus the simulated-time extent.

    The log-side analogue of the metrics registry snapshot: how many
    schedules / dispatches / demands / deliveries a stream holds, and
    the simulated-time span they cover.
    """

    name = "metrics_rollup"

    def initial(self) -> Dict[str, Any]:
        return {"events": 0, "by_kind": {}, "sim_time_max": None}

    def apply(
        self, state: Dict[str, Any], event: Dict[str, Any]
    ) -> Dict[str, Any]:
        state["events"] += 1
        kind = event["kind"]
        state["by_kind"][kind] = state["by_kind"].get(kind, 0) + 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            current = state["sim_time_max"]
            if current is None or t > current:
                state["sim_time_max"] = t
        return state

    def result(self, state: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "events": state["events"],
            "by_kind": {
                kind: state["by_kind"][kind]
                for kind in sorted(state["by_kind"])
            },
            "sim_time_max": state["sim_time_max"],
        }


class CellResultProjection(Projection):
    """The materialized snapshot: the stream's committed result bytes.

    ``result`` returns the raw snapshot bytes (or ``None``); these are
    *by construction* the same bytes the result cache stores for the
    same cell — both sides encode via :mod:`repro.store.snapshot` —
    which is what makes a cache hit and a log catch-up interchangeable.
    """

    name = "cell_result"

    def initial(self) -> Optional[bytes]:
        return None

    def apply(
        self, state: Optional[bytes], event: Dict[str, Any]
    ) -> Optional[bytes]:
        if event["kind"] == CELL_RESULT_KIND:
            return result_event_bytes(event)
        return state


class TableRowsProjection(Projection):
    """Table-5/6 row dicts from a stream's ``cell_result`` snapshot.

    Folds the committed :class:`~repro.simulation.metrics.SystemMetrics`
    (via the result snapshot) into the paper's row format — one dict per
    rendered column (Rel1 / Rel2 / ... / System), duck-typed through
    ``as_row()`` so the store never imports the simulation layer.
    """

    name = "table_rows"

    def initial(self) -> Optional[bytes]:
        return None

    def apply(
        self, state: Optional[bytes], event: Dict[str, Any]
    ) -> Optional[bytes]:
        if event["kind"] == CELL_RESULT_KIND:
            return result_event_bytes(event)
        return state

    def result(self, state: Optional[bytes]) -> List[Dict[str, Any]]:
        if state is None:
            return []
        value = pickle.loads(state)
        metrics = getattr(value, "metrics", value)
        rows: List[Dict[str, Any]] = []
        releases = getattr(metrics, "releases", None)
        system = getattr(metrics, "system", None)
        if releases is None or system is None:
            return []
        for release in releases:
            row = dict(release.as_row())
            row["row"] = release.name
            rows.append(row)
        row = dict(system.as_row())
        row["row"] = "System"
        rows.append(row)
        run = getattr(value, "run", None)
        timeout = getattr(value, "timeout", None)
        for row in rows:
            if run is not None:
                row["run"] = run
            if timeout is not None:
                row["timeout"] = timeout
        return rows


class ConfidenceTrajectoryProjection(Projection):
    """Bayesian confidence trajectory from ``checkpoint`` events.

    Each sequential-assessment checkpoint event carries the demand
    count, the cumulative Table-1 counts and the posterior summaries;
    the fold collects them in demand order — the Fig-7/8 curve read
    model, straight from the log.
    """

    name = "confidence"

    def initial(self) -> List[Dict[str, Any]]:
        return []

    def apply(
        self, state: List[Dict[str, Any]], event: Dict[str, Any]
    ) -> List[Dict[str, Any]]:
        if event["kind"] == "checkpoint":
            point = {
                name: value
                for name, value in event.items()
                if name not in ("seq", "kind", "cell")
            }
            state.append(point)
        return state


#: Registry the ``repro store project`` subcommand exposes.
BUILTIN_PROJECTIONS = {
    "metrics_rollup": MetricsRollupProjection,
    "table_rows": TableRowsProjection,
    "confidence": ConfidenceTrajectoryProjection,
    "cell_result": CellResultProjection,
}


def first_divergence(
    events_a: Iterator[Dict[str, Any]],
    events_b: Iterator[Dict[str, Any]],
    ignore_fields: Tuple[str, ...] = (),
) -> Any:
    """First-divergence projection over two logs (streaming).

    A thin re-export of the streaming comparator in
    :mod:`repro.obs.diff` so store users can diff two streams without
    touching trace files: peak memory is O(one event per side).
    """
    from repro.obs.diff import diff_traces

    return diff_traces(events_a, events_b, ignore_fields)
