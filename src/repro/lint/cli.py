"""``python -m repro.lint`` — the determinism linter's command line.

Exit status is 0 when no findings survive suppression filtering and 1
otherwise (2 for usage errors), so the command slots directly into CI::

    python -m repro.lint src/                 # text report
    python -m repro.lint --format json src/   # machine-readable
    python -m repro.lint --select REPRO101,REPRO102 src/
    python -m repro.lint --list-rules
"""

import argparse
import sys
from typing import List, Optional

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import run_lint
from repro.lint.report import render_json, render_text
from repro.lint.rules import all_rules
from repro.lint.version import LINT_VERSION


def _parse_rule_ids(raw: Optional[str]) -> Optional[frozenset]:
    if raw is None:
        return None
    ids = frozenset(part.strip() for part in raw.split(",") if part.strip())
    return ids or None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static analysis for reproduction-breaking patterns: RNG "
            "discipline, wall-clock reads, process-pool hygiene, "
            "unordered iteration, float accumulation order, and "
            "paper-parameter literals."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro.lint {LINT_VERSION}",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0

    config = LintConfig(
        select=_parse_rule_ids(args.select),
        ignore=_parse_rule_ids(args.ignore) or frozenset(),
        seeding_module=DEFAULT_CONFIG.seeding_module,
        wallclock_scopes=DEFAULT_CONFIG.wallclock_scopes,
        wallclock_allow=DEFAULT_CONFIG.wallclock_allow,
        unordered_scopes=DEFAULT_CONFIG.unordered_scopes,
        floatsum_scopes=DEFAULT_CONFIG.floatsum_scopes,
        literal_scopes=DEFAULT_CONFIG.literal_scopes,
        literal_exempt=DEFAULT_CONFIG.literal_exempt,
    )
    result = run_lint(args.paths, config)
    if args.format == "json":
        print(render_json(result.findings, result.files_checked))
    else:
        print(render_text(result.findings, result.files_checked))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
