"""``python -m repro.lint`` — the determinism linter's command line.

Exit status is 0 when no findings survive suppression/baseline
filtering and 1 otherwise (2 for usage errors), so the command slots
directly into CI::

    python -m repro.lint src/                     # per-file rules, text
    python -m repro.lint --format json src/       # machine-readable
    python -m repro.lint --format github src/     # PR annotations
    python -m repro.lint --program src/repro      # whole-program rules
    python -m repro.lint --program --write-baseline lint-baseline.json src/
    python -m repro.lint --select REPRO101,REPRO102 src/
    python -m repro.lint --list-rules
"""

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.lint.config import DEFAULT_CONFIG
from repro.lint.engine import run_lint, run_program_lint
from repro.lint.report import render_github, render_json, render_text
from repro.lint.rules import all_rules
from repro.lint.suppressions import load_baseline, render_baseline
from repro.lint.version import LINT_VERSION


def _parse_rule_ids(raw: Optional[str]) -> Optional[frozenset]:
    if raw is None:
        return None
    ids = frozenset(part.strip() for part in raw.split(",") if part.strip())
    return ids or None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static analysis for reproduction-breaking patterns: RNG "
            "discipline, wall-clock reads, process-pool hygiene, "
            "unordered iteration, float accumulation order, "
            "paper-parameter literals — and, with --program, "
            "whole-program cache-key, RNG-stream, envelope and "
            "observability-name consistency."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help=(
            "run the whole-program (REPRO2xx) analysis instead of the "
            "per-file rules"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "report format (default: text; github emits workflow "
            "::error annotations)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "drop findings recorded in this baseline file "
            "(--program runs only)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help=(
            "write surviving findings to FILE as a baseline and exit 0 "
            "(--program runs only)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro.lint {LINT_VERSION}",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        from repro.lint.program import all_program_rules

        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        for rule in all_program_rules():
            print(
                f"{rule.rule_id}  {rule.name} (--program): "
                f"{rule.description}"
            )
        return 0

    if (args.baseline or args.write_baseline) and not args.program:
        parser.error("--baseline/--write-baseline require --program")

    config = dataclasses.replace(
        DEFAULT_CONFIG,
        select=_parse_rule_ids(args.select),
        ignore=_parse_rule_ids(args.ignore) or frozenset(),
    )

    if args.program:
        baseline = (
            load_baseline(args.baseline) if args.baseline else None
        )
        result = run_program_lint(args.paths, config, baseline=baseline)
    else:
        result = run_lint(args.paths, config)

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(render_baseline(result.findings) + "\n")
        print(
            f"wrote {len(result.findings)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0

    if args.format == "json":
        print(render_json(result.findings, result.files_checked))
    elif args.format == "github":
        print(render_github(result.findings, result.files_checked))
    else:
        print(render_text(result.findings, result.files_checked))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
