"""Linter / ruleset version.

Kept in its own leaf module so that :mod:`repro.runtime.cache` can fold
the ruleset version into cache keys without importing the analysis
machinery (and without creating an import cycle).

Bump :data:`LINT_VERSION` whenever a rule is added, removed, or changes
what it accepts: the on-disk result cache treats the version as part of
every cell key, so results produced under a weaker ruleset cannot mask a
behaviour change that a newer rule would have caught.
"""

#: Version of the repro.lint ruleset (part of every cache key).
#: 2.0.0: whole-program analyzer (REPRO201-204) joins the ruleset.
LINT_VERSION = "2.0.0"
