"""Import-alias resolution for qualified-name matching.

Rules match *resolved* dotted names (``numpy.random.default_rng``), so a
module can't dodge them by aliasing (``import numpy as np``,
``from numpy import random as nr``, ``from time import time as t``).
Resolution is purely syntactic: it rewrites the leading identifier of a
dotted reference through the module's import bindings and makes no
attempt at data-flow (``rng_factory = np.random.default_rng;
rng_factory()`` escapes — an accepted approximation, ratcheted by the
fact that such indirection never survives code review here).
"""

import ast
from typing import Dict, Optional


class ImportMap:
    """Mapping from locally bound names to the dotted names they import."""

    def __init__(self) -> None:
        self._bindings: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports._bindings[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a`` (to itself).
                        root = alias.name.split(".", 1)[0]
                        imports._bindings.setdefault(root, root)
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay unresolved
                for alias in node.names:
                    bound = alias.asname or alias.name
                    imports._bindings[bound] = f"{node.module}.{alias.name}"
        return imports

    def resolve(self, dotted: str) -> str:
        """Rewrite the leading identifier of *dotted* through the imports."""
        head, _, rest = dotted.partition(".")
        target = self._bindings.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def binds(self, name: str) -> bool:
        """True when *name* is bound by an import in this module."""
        return name in self._bindings


def dotted_name(node: ast.AST) -> Optional[str]:
    """The source-level dotted name of an attribute chain, if it is one."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolved_call_name(
    call: ast.Call, imports: ImportMap
) -> Optional[str]:
    """The fully resolved dotted name a call dispatches to, if static."""
    name = dotted_name(call.func)
    if name is None:
        return None
    return imports.resolve(name)
