"""Configuration for the repro.lint ruleset.

The defaults encode this repository's determinism contract (see
README.md "Determinism contract"); every scope is expressed as a dotted
module prefix so the rules keep working as packages grow.  Fixture
modules outside ``src/`` can opt into a scope with a
``# repro-lint: module=<dotted.name>`` override comment near the top of
the file (see :mod:`repro.lint.suppressions`).
"""

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional, Tuple

#: Paper constants (from ``repro.experiments.paper_params``) distinctive
#: enough that an inline numeric literal with the same value almost
#: certainly duplicates the parameter instead of importing it.
#: Deliberately excludes ubiquitous values (0.7, 0.1, the TimeOuts)
#: whose collisions would swamp the rule with false positives.
PAPER_LITERALS: Mapping[float, str] = {
    10_000: "REQUESTS_PER_RUN",
    50_000: "SCENARIO_DEMANDS",
    0.99: "CONFIDENCE_LEVEL / CRITERION2_CONFIDENCE",
    1e-3: "SC1_PA / CRITERION2_TARGET",
    5e-3: "SC2_PA",
    5e-4: "SC1_PB_GIVEN_NOT_A",
    0.15: "P_OMIT / Table-3 marginal",
}


def module_in(module: str, scopes: Tuple[str, ...]) -> bool:
    """True when *module* equals or sits under any dotted prefix in *scopes*."""
    return any(
        module == scope or module.startswith(scope + ".") for scope in scopes
    )


@dataclass(frozen=True)
class LintConfig:
    """Which rules run where.

    ``select``/``ignore`` filter by rule ID; everything else scopes
    individual rules to the parts of the tree where their invariant is
    load-bearing.
    """

    #: Only run these rule IDs (None = all registered rules).
    select: Optional[FrozenSet[str]] = None
    #: Never run these rule IDs.
    ignore: FrozenSet[str] = frozenset()

    #: The one module allowed to construct fresh RNGs (REPRO101).
    seeding_module: str = "repro.common.seeding"

    #: Packages where wall-clock reads break sim-time determinism (REPRO102).
    wallclock_scopes: Tuple[str, ...] = (
        "repro.simulation",
        "repro.bayes",
        "repro.core",
        "repro.runtime.columnar",
    )
    #: Modules exempt from the wall-clock ban (the CLI's elapsed timer).
    wallclock_allow: Tuple[str, ...] = ("repro.experiments.cli",)

    #: Result-aggregation / serialisation packages where iterating an
    #: unordered collection leaks set order into output (REPRO104).
    unordered_scopes: Tuple[str, ...] = (
        "repro.experiments",
        "repro.analysis",
        "repro.pipeline",
    )

    #: Stats/metrics packages where float accumulation order matters
    #: (REPRO105).
    floatsum_scopes: Tuple[str, ...] = (
        "repro.analysis",
        "repro.simulation.metrics",
        "repro.bayes",
        "repro.runtime.columnar",
    )

    #: Packages checked for inline paper-parameter duplicates (REPRO106) ...
    literal_scopes: Tuple[str, ...] = ("repro.experiments",)
    #: ... except the modules that *define* or transcribe those values.
    literal_exempt: Tuple[str, ...] = (
        "repro.experiments.paper_params",
        "repro.experiments.paper_reported",
    )
    #: value -> paper_params name, for the REPRO106 message.
    paper_literals: Mapping[float, str] = field(
        default_factory=lambda: dict(PAPER_LITERALS)
    )

    # -- whole-program (REPRO2xx) anchors ------------------------------
    # All expressed as canonical dotted names so the analyzer never
    # imports the code under analysis; fixtures impersonate these
    # modules with ``# repro-lint: module=...`` overrides.

    #: The parallel-cell dataclass every builder constructs (REPRO201/202).
    cellspec_symbol: str = "repro.runtime.parallel.CellSpec"
    #: The registered experiment-spec dataclass (REPRO201).
    spec_symbol: str = "repro.pipeline.spec.ExperimentSpec"
    #: Cell kwargs exempt from cache-key coverage (observability
    #: plumbing).  Mirrors ``repro.pipeline.spec.CELL_OBSERVABILITY_PARAMS``
    #: — duplicated here so lint stays import-independent of the
    #: analyzed tree; a sync test pins the two tuples together.
    cell_observability_params: Tuple[str, ...] = (
        "metrics",
        "trace_path",
        "trace_cell",
        "trace_dir",
        "tracer",
    )
    #: The columnar backend module and its envelope anchors (REPRO203).
    columnar_module: str = "repro.runtime.columnar"
    fallback_slugs_name: str = "FALLBACK_SLUGS"
    unsupported_fn_name: str = "unsupported_reasons"
    mode_resolvers_name: str = "_MODE_RESOLVERS"
    fallback_metric_prefix: str = "backend.fallback_reason."
    #: The operating-mode enum the resolver table must cover (REPRO203).
    modes_module: str = "repro.core.modes"
    mode_enum_name: str = "OperatingMode"
    #: The declared metric/trace-event name registry (REPRO204).
    obs_names_module: str = "repro.obs.names"

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select is not None:
            return rule_id in self.select
        return True


DEFAULT_CONFIG = LintConfig()
