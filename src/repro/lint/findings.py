"""The :class:`Finding` record produced by every lint rule."""

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Sorts by (path, line, column, rule) so reports are stable across
    filesystem walk order — the linter's own output must be as
    deterministic as the code it polices.
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.column, self.rule_id)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} {self.message}"
        )
