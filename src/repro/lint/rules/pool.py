"""REPRO103 — process-pool hygiene for parallel experiment cells.

Cells submitted through :mod:`repro.runtime.parallel` execute in worker
processes.  A cell that reads module-level mutable state computes
against a *copy* of that state frozen at fork time — mutations made by
the parent or by sibling cells are silently invisible, the classic
cross-process race that produces jobs-dependent results.  A cell that
is a ``lambda``/nested function fails to pickle at all (but only on the
``jobs > 1`` path, so tests that run inline never see it), and a
generator cell returns an unpicklable iterator instead of a value.

The rule checks every ``CellSpec(...)`` construction site:

* ``fn`` must be a module-level (or imported) function — not a lambda,
  not a function defined inside the enclosing scope;
* a cell function defined in the same module must not be a generator
  and must not read names bound at module level to mutable containers
  (list/dict/set displays or constructor calls).
"""

import ast
from typing import Dict, Iterator, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, call_argument

CELLSPEC = "repro.runtime.parallel.CellSpec"

#: Constructor calls whose result is mutable shared state.
MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "collections.defaultdict",
    "collections.Counter",
    "collections.OrderedDict",
    "collections.deque",
}


def _module_level_functions(
    tree: ast.Module,
) -> Dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _mutable_globals(tree: ast.Module, module: ModuleInfo) -> Dict[str, int]:
    """Module-level names bound to mutable containers -> definition line."""
    table: Dict[str, int] = {}
    for node in tree.body:
        targets = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                    ast.DictComp, ast.SetComp)
        )
        if not mutable and isinstance(value, ast.Call):
            mutable = module.resolve_call(value) in MUTABLE_FACTORIES
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                table[target.id] = node.lineno
    return table


def _local_bindings(fn: ast.FunctionDef) -> Set[str]:
    """Names bound inside *fn* (params + assignments), which shadow globals."""
    bound = {arg.arg for arg in fn.args.args}
    bound.update(arg.arg for arg in fn.args.posonlyargs)
    bound.update(arg.arg for arg in fn.args.kwonlyargs)
    if fn.args.vararg:
        bound.add(fn.args.vararg.arg)
    if fn.args.kwarg:
        bound.add(fn.args.kwarg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                bound.add(node.name)
    return bound - declared_global


class PoolHygieneRule(Rule):
    rule_id = "REPRO103"
    name = "pool-hygiene"
    description = (
        "Callables submitted through repro.runtime.parallel must be "
        "module-level, non-generator functions that do not read "
        "module-level mutable state."
    )

    def check(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        if not module.imports.binds("CellSpec") and all(
            "repro.runtime.parallel" not in line for line in module.lines
        ):
            return
        toplevel = _module_level_functions(module.tree)
        mutable = _mutable_globals(module.tree, module)
        checked: Set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if module.resolve_call(node) != CELLSPEC:
                continue
            fn_arg = call_argument(node, "fn", 1)
            if fn_arg is None:
                continue
            if isinstance(fn_arg, ast.Lambda):
                yield module.finding(
                    fn_arg,
                    self.rule_id,
                    "CellSpec fn is a lambda — not picklable, so the "
                    "cell only works inline (jobs=1); define a "
                    "module-level function",
                )
                continue
            if not isinstance(fn_arg, ast.Name):
                continue  # attribute refs (imported fns) assumed clean
            name = fn_arg.id
            if name not in toplevel:
                if not module.imports.binds(name):
                    yield module.finding(
                        fn_arg,
                        self.rule_id,
                        f"CellSpec fn {name!r} is not a module-level "
                        "function — nested functions don't pickle into "
                        "worker processes",
                    )
                continue
            if name in checked:
                continue
            checked.add(name)
            yield from self._check_cell_function(
                module, toplevel[name], mutable
            )

    def _check_cell_function(
        self,
        module: ModuleInfo,
        fn: ast.FunctionDef,
        mutable: Dict[str, int],
    ) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                yield module.finding(
                    node,
                    self.rule_id,
                    f"cell function {fn.name!r} is a generator — it "
                    "returns an unpicklable iterator; return a "
                    "materialised result",
                )
                return
        if not mutable:
            return
        local = _local_bindings(fn)
        reported: Set[str] = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutable
                and node.id not in local
                and node.id not in reported
            ):
                reported.add(node.id)
                yield module.finding(
                    node,
                    self.rule_id,
                    f"cell function {fn.name!r} reads module-level "
                    f"mutable {node.id!r} (defined at line "
                    f"{mutable[node.id]}) — worker processes see a "
                    "fork-time copy; pass it through kwargs instead",
                )
