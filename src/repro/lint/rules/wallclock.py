"""REPRO102 — wall-clock ban in simulated-time packages.

Simulation, inference, and middleware code must take time from the
discrete-event clock (:mod:`repro.simulation.clock`), never from the
host.  A wall-clock read in these packages couples results to scheduler
jitter and machine speed — the one nondeterminism class no seed can
fix.  The experiment CLI's elapsed-time banner is allowlisted by
module (see :class:`~repro.lint.config.LintConfig.wallclock_allow`).
"""

import ast
from typing import Iterator

from repro.lint.config import LintConfig, module_in
from repro.lint.engine import ModuleInfo
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule

#: Host-clock reads (resolved names).
BANNED_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    rule_id = "REPRO102"
    name = "wall-clock-ban"
    description = (
        "time.time()/time.monotonic()/datetime.now() are forbidden in "
        "repro.simulation, repro.bayes, and repro.core — simulated time "
        "must come from the sim clock."
    )

    def check(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        if not module_in(module.module, config.wallclock_scopes):
            return
        if module_in(module.module, config.wallclock_allow):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.resolve_call(node)
            if resolved in BANNED_CLOCKS:
                yield module.finding(
                    node,
                    self.rule_id,
                    f"wall-clock read {resolved}() in {module.module}; "
                    "simulated components must read the sim clock "
                    "(repro.simulation.clock) so runs are "
                    "machine-independent",
                )
