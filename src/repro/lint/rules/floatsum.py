"""REPRO105 — float-accumulation order in stats/metrics paths.

Floating-point addition is not associative: ``sum()`` over a collection
whose iteration order is not fixed (a set, or a dict view whose
insertion history differs between sequential and parallel runs) can
round differently run-to-run, breaking the bit-identical contract at
the last ulp — the hardest discrepancy to debug.  In the statistics and
metrics packages such sums must go through the order-independent
helpers (:func:`repro.common.numerics.stable_sum` /
:func:`math.fsum`, which are exactly rounded and therefore
order-insensitive) or an explicitly ``sorted(...)`` iterable.
"""

import ast
from typing import Iterator, Optional

from repro.lint.config import LintConfig, module_in
from repro.lint.engine import ModuleInfo
from repro.lint.findings import Finding
from repro.lint.rules.base import (
    Rule,
    is_set_expression,
    is_unordered_view_call,
)


def _unordered_reason(
    arg: ast.expr, module: ModuleInfo
) -> Optional[str]:
    """Why *arg*'s iteration order is unreliable, or None if it is fine."""
    if is_set_expression(arg, module):
        return "a set"
    if is_unordered_view_call(arg):
        return f"a dict .{arg.func.attr}() view"  # type: ignore[attr-defined]
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
        source = arg.generators[0].iter
        if is_set_expression(source, module):
            return "a comprehension over a set"
        if is_unordered_view_call(source):
            return "a comprehension over a dict view"
    return None


class FloatAccumulationRule(Rule):
    rule_id = "REPRO105"
    name = "float-accumulation-order"
    description = (
        "sum() over unordered collections in stats/metrics code must "
        "use repro.common.numerics.stable_sum (math.fsum) or a "
        "sorted(...) iterable."
    )

    def check(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        if not module_in(module.module, config.floatsum_scopes):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if module.resolve_call(node) != "sum" or not node.args:
                continue
            reason = _unordered_reason(node.args[0], module)
            if reason is not None:
                yield module.finding(
                    node,
                    self.rule_id,
                    f"sum() over {reason} accumulates in unstable "
                    "order; use repro.common.numerics.stable_sum "
                    "(exactly-rounded fsum) or sort the iterable",
                )
