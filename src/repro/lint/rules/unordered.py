"""REPRO104 — unordered-iteration hazard in aggregation paths.

Python sets iterate in hash order, which varies with insertion history
and (for str keys under hash randomisation) across processes.  In the
experiment/report layer, iterating a set straight into a result list,
table, or serialised artefact embeds that order in the output.  The
rule flags set-valued expressions consumed by order-sensitive contexts
(``for`` loops, comprehensions, ``list``/``tuple``/``enumerate``/
``reversed``/``str.join``) unless wrapped in ``sorted(...)``; order-
insensitive consumers (``len``, ``min``, ``max``, ``any``, ``all``,
membership tests, set algebra) pass.
"""

import ast
from typing import Iterator

from repro.lint.config import LintConfig, module_in
from repro.lint.engine import ModuleInfo
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, is_set_expression

#: Builtins whose result does not depend on argument order.
ORDER_INSENSITIVE = {
    "sorted",
    "len",
    "min",
    "max",
    "any",
    "all",
    "bool",
    "set",
    "frozenset",
    "sum",  # accumulation order is REPRO105's concern
}

#: Builtins that freeze iteration order into their result.
ORDER_SENSITIVE = {"list", "tuple", "enumerate", "reversed", "iter"}

_ADVICE = "wrap it in sorted(...) to fix the order"


class UnorderedIterationRule(Rule):
    rule_id = "REPRO104"
    name = "unordered-iteration"
    description = (
        "Iterating a set into result aggregation/serialisation without "
        "sorted(...) embeds hash order in experiment output."
    )

    def check(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        if not module_in(module.module, config.unordered_scopes):
            return
        parents = module.parents()
        for node in ast.walk(module.tree):
            if not is_set_expression(node, module):
                continue
            parent = parents.get(node)
            if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
                yield module.finding(
                    node,
                    self.rule_id,
                    f"for-loop over a set in {module.module}; {_ADVICE}",
                )
            elif isinstance(parent, ast.comprehension) and parent.iter is node:
                yield module.finding(
                    node,
                    self.rule_id,
                    f"comprehension over a set in {module.module}; "
                    f"{_ADVICE}",
                )
            elif isinstance(parent, ast.Call) and node in parent.args:
                resolved = module.resolve_call(parent)
                if resolved in ORDER_INSENSITIVE:
                    continue
                if resolved in ORDER_SENSITIVE:
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"{resolved}() over a set freezes hash order "
                        f"into the result; {_ADVICE}",
                    )
                elif (
                    isinstance(parent.func, ast.Attribute)
                    and parent.func.attr == "join"
                ):
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"str.join over a set serialises hash order; "
                        f"{_ADVICE}",
                    )
