"""REPRO106 — inline duplicates of paper parameters.

Every constant the paper states lives once, in
``repro.experiments.paper_params``.  A numeric literal elsewhere in the
experiment layer that equals one of the distinctive values (10,000
requests per run, 50,000 scenario demands, the 0.99 confidence level,
the scenario pfd targets, the 0.15 omission probability) almost always
duplicates the parameter instead of importing it — and silently stops
tracking it if the canonical value is ever corrected.  Deliberate
coincidences (a fast-mode size that happens to equal a paper value)
carry a line suppression explaining themselves.
"""

import ast
from typing import Iterator

from repro.lint.config import LintConfig, module_in
from repro.lint.engine import ModuleInfo
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule


class PaperLiteralRule(Rule):
    rule_id = "REPRO106"
    name = "paper-parameter-literal"
    description = (
        "Numeric literals duplicating paper_params values must import "
        "the named constant instead."
    )

    def check(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        if not module_in(module.module, config.literal_scopes):
            return
        if module_in(module.module, config.literal_exempt):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            name = config.paper_literals.get(float(value))
            if name is not None:
                yield module.finding(
                    node,
                    self.rule_id,
                    f"literal {value!r} duplicates paper parameter "
                    f"{name}; import it from "
                    "repro.experiments.paper_params",
                )
