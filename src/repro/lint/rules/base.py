"""Rule base class and shared AST helpers."""

import ast
from typing import Iterator, Optional

from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo
from repro.lint.findings import Finding


class Rule:
    """One determinism check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding a :class:`Finding` per violation.  Rules must be pure
    functions of the module under analysis — no filesystem access, no
    state between files — so the report is reproducible and files can
    be linted in any order.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.rule_id!r})"


def is_set_expression(node: ast.AST, module: ModuleInfo) -> bool:
    """True when *node* statically evaluates to a set/frozenset.

    Covers set displays, set comprehensions, ``set()``/``frozenset()``
    calls, and set-algebra expressions (``a | {…}``) over any of those.
    Plain names are not tracked — data-flow is out of scope.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = module.resolve_call(node)
        if resolved in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_expression(node.left, module) or is_set_expression(
            node.right, module
        )
    return False


def is_unordered_view_call(node: ast.AST) -> bool:
    """True for ``<expr>.keys()`` / ``.values()`` / ``.items()`` calls.

    Mapping views iterate in insertion order, which is deterministic for
    a fixed insertion history — but the insertion history of an
    accumulator dict is exactly what differs between sequential and
    parallel runs, so accumulation paths must not depend on it.
    """
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in {"keys", "values", "items"}
        and not node.args
        and not node.keywords
    )


def call_argument(
    call: ast.Call, name: str, position: int
) -> Optional[ast.expr]:
    """The argument bound to parameter *name* (kwarg) or *position*."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    if len(call.args) > position:
        return call.args[position]
    return None
