"""REPRO101 — RNG discipline.

All randomness must flow through :mod:`repro.common.seeding`: that is
the property that makes a parallel cell bit-identical to its sequential
twin.  Constructing a generator anywhere else — seeded or not — creates
a stream whose draws are invisible to the seed audit, and an *unseeded*
one (``np.random.default_rng()`` with no argument) makes the run
irreproducible outright.
"""

import ast
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule

#: Generator/state factories that mint new random streams.
BANNED_FACTORIES = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.seed",
    "random.Random",
    "random.SystemRandom",
    "random.seed",
}

#: Module-level ``random.*`` draws (the hidden global-state stream).
MODULE_RANDOM_FUNCS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gammavariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}


class RngDisciplineRule(Rule):
    rule_id = "REPRO101"
    name = "rng-discipline"
    description = (
        "RNG construction and module-level random.* draws are only "
        "allowed in repro.common.seeding; route everything else through "
        "SeedSequenceFactory / spawn_generator."
    )

    def check(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        if module.module == config.seeding_module:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.resolve_call(node)
            if resolved is None:
                continue
            if resolved in BANNED_FACTORIES:
                unseeded = not node.args and not node.keywords
                detail = (
                    "unseeded — irreproducible by construction"
                    if unseeded
                    else "creates a stream outside the seed audit"
                )
                yield module.finding(
                    node,
                    self.rule_id,
                    f"call to {resolved}() outside "
                    f"{config.seeding_module} ({detail}); use "
                    "repro.common.seeding.spawn_generator or "
                    "SeedSequenceFactory",
                )
            elif (
                resolved.startswith("random.")
                and resolved[len("random.") :] in MODULE_RANDOM_FUNCS
            ):
                yield module.finding(
                    node,
                    self.rule_id,
                    f"module-level {resolved}() draws from the hidden "
                    "global stream; take an explicit "
                    "numpy.random.Generator parameter instead",
                )
