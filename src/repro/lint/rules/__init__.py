"""Rule registry for repro.lint.

Rules register here in rule-ID order; :func:`all_rules` returns one
instance of each.  Adding a rule is: write the visitor module, import
it below, bump :data:`repro.lint.version.LINT_VERSION`.
"""

from typing import List, Tuple

from repro.lint.rules.base import Rule
from repro.lint.rules.floatsum import FloatAccumulationRule
from repro.lint.rules.literals import PaperLiteralRule
from repro.lint.rules.pool import PoolHygieneRule
from repro.lint.rules.rng import RngDisciplineRule
from repro.lint.rules.unordered import UnorderedIterationRule
from repro.lint.rules.wallclock import WallClockRule

_RULE_CLASSES: Tuple[type, ...] = (
    RngDisciplineRule,
    WallClockRule,
    PoolHygieneRule,
    UnorderedIterationRule,
    FloatAccumulationRule,
    PaperLiteralRule,
)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in rule-ID order."""
    return [cls() for cls in _RULE_CLASSES]


__all__ = [
    "Rule",
    "all_rules",
    "FloatAccumulationRule",
    "PaperLiteralRule",
    "PoolHygieneRule",
    "RngDisciplineRule",
    "UnorderedIterationRule",
    "WallClockRule",
]
