"""Determinism & concurrency static analysis for the repro tree.

The paper's confidence-in-correctness results are only trustworthy if
every run is bit-reproducible — and the parallel experiment runtime
makes that contract load-bearing (a cell must be byte-identical whether
it ran inline or in a worker process).  This package enforces the
contract statically, with six AST rules:

========  =====================  =========================================
ID        name                   catches
========  =====================  =========================================
REPRO101  rng-discipline         RNG construction / module-level random.*
                                 outside ``repro.common.seeding``
REPRO102  wall-clock-ban         host-clock reads in simulated-time code
REPRO103  pool-hygiene           unpicklable or state-sharing cells
                                 submitted to ``repro.runtime.parallel``
REPRO104  unordered-iteration    set iteration order leaking into results
REPRO105  float-accumulation     order-sensitive ``sum()`` in stats paths
REPRO106  paper-parameter-       inline duplicates of ``paper_params``
          literal                constants
========  =====================  =========================================

On top of the per-file rules, :mod:`repro.lint.program` builds a
whole-program model (symbol table, import graph, approximate call
graph, dataflow summaries) and checks four *interprocedural*
invariants — the cross-module consistency bugs per-file analysis
cannot see:

=========  ======================  ====================================
REPRO201   cache-key-              result-influencing cell parameters
           completeness            absent from cache keys / schemas
REPRO202   rng-stream-escape       Generator streams crossing parallel
                                   cell boundaries
REPRO203   envelope-sync           columnar fallback slugs, resolver
                                   table, and counters drifting apart
REPRO204   obs-name-drift          undeclared metric/trace-event names
=========  ======================  ====================================

Run the per-file rules with ``python -m repro.lint src/`` and the
whole-program rules with ``python -m repro.lint --program src/repro``;
suppress a deliberate exception with a line comment
``# repro-lint: disable=REPROxxx``, or ratchet pre-existing program
findings with ``--write-baseline`` / ``--baseline``.
"""

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import (
    LintRun,
    ModuleInfo,
    lint_module,
    lint_paths,
    run_lint,
    run_program_lint,
)
from repro.lint.findings import Finding
from repro.lint.program import ProgramModel, all_program_rules
from repro.lint.rules import all_rules
from repro.lint.version import LINT_VERSION

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintRun",
    "LINT_VERSION",
    "ModuleInfo",
    "ProgramModel",
    "all_program_rules",
    "all_rules",
    "lint_module",
    "lint_paths",
    "run_lint",
    "run_program_lint",
]
