"""Determinism & concurrency static analysis for the repro tree.

The paper's confidence-in-correctness results are only trustworthy if
every run is bit-reproducible — and the parallel experiment runtime
makes that contract load-bearing (a cell must be byte-identical whether
it ran inline or in a worker process).  This package enforces the
contract statically, with six AST rules:

========  =====================  =========================================
ID        name                   catches
========  =====================  =========================================
REPRO101  rng-discipline         RNG construction / module-level random.*
                                 outside ``repro.common.seeding``
REPRO102  wall-clock-ban         host-clock reads in simulated-time code
REPRO103  pool-hygiene           unpicklable or state-sharing cells
                                 submitted to ``repro.runtime.parallel``
REPRO104  unordered-iteration    set iteration order leaking into results
REPRO105  float-accumulation     order-sensitive ``sum()`` in stats paths
REPRO106  paper-parameter-       inline duplicates of ``paper_params``
          literal                constants
========  =====================  =========================================

Run it with ``python -m repro.lint src/``; suppress a deliberate
exception with a line comment ``# repro-lint: disable=REPRO10x``.
"""

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import (
    LintRun,
    ModuleInfo,
    lint_module,
    lint_paths,
    run_lint,
)
from repro.lint.findings import Finding
from repro.lint.rules import all_rules
from repro.lint.version import LINT_VERSION

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintRun",
    "LINT_VERSION",
    "ModuleInfo",
    "all_rules",
    "lint_module",
    "lint_paths",
    "run_lint",
]
