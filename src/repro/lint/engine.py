"""Walks files, parses modules, runs rules, filters suppressions."""

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.findings import Finding
from repro.lint.imports import ImportMap, resolved_call_name
from repro.lint.suppressions import (
    is_suppressed,
    parse_module_override,
    parse_suppressions,
)

#: Directories never descended into when walking a tree.
SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".mypy_cache",
    ".ruff_cache",
    ".pytest_cache",
}


@dataclass
class ModuleInfo:
    """Everything a rule needs to know about one parsed source file."""

    path: Path
    module: str
    tree: ast.Module
    lines: List[str]
    imports: ImportMap
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(
        default=None, repr=False
    )

    @classmethod
    def parse(cls, path: Path) -> "ModuleInfo":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        lines = source.splitlines()
        module = parse_module_override(lines) or derive_module_name(path)
        return cls(
            path=path,
            module=module,
            tree=tree,
            lines=lines,
            imports=ImportMap.from_tree(tree),
        )

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Fully resolved dotted name of *call*'s target, if static."""
        return resolved_call_name(call, self.imports)

    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree (built lazily)."""
        if self._parents is None:
            table: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    table[child] = parent
            self._parents = table
        return self._parents

    def finding(
        self, node: ast.AST, rule_id: str, message: str
    ) -> Finding:
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
        )


def derive_module_name(path: Path) -> str:
    """Dotted module name from a file path (rooted at ``repro`` if present).

    Files outside a ``repro`` package (test fixtures, scripts) fall back
    to their stem; they can opt into scoped rules with a
    ``# repro-lint: module=...`` override instead.
    """
    parts = list(path.parts)
    name = path.stem
    if "repro" in parts[:-1]:
        anchor = len(parts) - 2 - parts[:-1][::-1].index("repro")
        dotted = parts[anchor:-1] + ([] if name == "__init__" else [name])
        return ".".join(dotted)
    return name


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under *paths* in sorted, deterministic order."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in SKIP_DIRS for part in candidate.parts):
                yield candidate


def lint_module(
    info: ModuleInfo, config: LintConfig = DEFAULT_CONFIG
) -> List[Finding]:
    """Run every enabled rule over one parsed module."""
    # Imported here so rule modules can import engine helpers freely.
    from repro.lint.rules import all_rules

    suppressions = parse_suppressions(info.lines)
    findings: List[Finding] = []
    for rule in all_rules():
        if not config.rule_enabled(rule.rule_id):
            continue
        for finding in rule.check(info, config):
            if not is_suppressed(
                suppressions, finding.line, finding.rule_id
            ):
                findings.append(finding)
    return findings


@dataclass
class LintRun:
    """Outcome of linting a set of paths."""

    findings: List[Finding]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings


def run_lint(
    paths: Iterable[str],
    config: LintConfig = DEFAULT_CONFIG,
) -> LintRun:
    """Lint every Python file under *paths*; findings come back sorted.

    Files that fail to parse produce a ``REPRO100`` syntax finding
    rather than aborting the run, so one broken file cannot hide the
    rest of the report.
    """
    findings: List[Finding] = []
    seen: Set[Path] = set()
    for path in iter_python_files([Path(p) for p in paths]):
        if path in seen:
            continue
        seen.add(path)
        try:
            info = ModuleInfo.parse(path)
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=str(path),
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                    rule_id="REPRO100",
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        findings.extend(lint_module(info, config))
    return LintRun(
        findings=sorted(findings, key=Finding.sort_key),
        files_checked=len(seen),
    )


def lint_paths(
    paths: Iterable[str],
    config: LintConfig = DEFAULT_CONFIG,
) -> List[Finding]:
    """Convenience wrapper around :func:`run_lint` returning findings only."""
    return run_lint(paths, config).findings


def run_program_lint(
    paths: Iterable[str],
    config: LintConfig = DEFAULT_CONFIG,
    baseline: Optional[Set[tuple]] = None,
) -> LintRun:
    """Run the whole-program (REPRO2xx) rules over *paths*.

    Every file is parsed into one :class:`ProgramModel` (unparsable
    files produce ``REPRO100`` findings and are left out of the model),
    each enabled program rule checks the model as a whole, and findings
    pass through the same per-line ``# repro-lint: disable=`` filter as
    per-file rules — suppression comments live next to the reported
    line regardless of which analysis produced the finding.  *baseline*
    is an accepted-findings set from
    :func:`repro.lint.suppressions.load_baseline`; matching findings
    are dropped so pre-existing debt can be ratcheted without blocking
    CI.
    """
    # Imported here to keep engine import-light for cache-key callers.
    from repro.lint.program import all_program_rules
    from repro.lint.program.model import ProgramModel
    from repro.lint.suppressions import matches_baseline

    findings: List[Finding] = []
    infos: List[ModuleInfo] = []
    seen: Set[Path] = set()
    for path in iter_python_files([Path(p) for p in paths]):
        if path in seen:
            continue
        seen.add(path)
        try:
            infos.append(ModuleInfo.parse(path))
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=str(path),
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                    rule_id="REPRO100",
                    message=f"file does not parse: {error.msg}",
                )
            )

    model = ProgramModel.build(infos)
    suppression_tables = {
        str(info.path): parse_suppressions(info.lines) for info in infos
    }
    for rule in all_program_rules():
        if not config.rule_enabled(rule.rule_id):
            continue
        for finding in rule.check(model, config):
            table = suppression_tables.get(finding.path, {})
            if is_suppressed(table, finding.line, finding.rule_id):
                continue
            if baseline is not None and matches_baseline(
                finding, baseline
            ):
                continue
            findings.append(finding)

    return LintRun(
        findings=sorted(findings, key=Finding.sort_key),
        files_checked=len(seen),
    )
