"""Locating and decomposing ``CellSpec(...)`` construction sites.

Both interprocedural dataflow rules anchor on the same program points —
the places where cell kwargs and cache keys are bound — so the site
model lives here, shared by REPRO201 (cache-key completeness) and
REPRO202 (RNG stream escape).
"""

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo
from repro.lint.program.dataflow import dict_entries, scope_chain_map
from repro.lint.program.model import FunctionInfo, ProgramModel


@dataclass
class CellSite:
    """One ``CellSpec(...)`` call, decomposed for dataflow queries."""

    call: ast.Call
    owner: ModuleInfo
    #: Innermost named function containing the call (None = module level).
    function: Optional[FunctionInfo]
    #: Merged assignment map over the lexical scope chain.
    assignments: Dict[str, List[ast.expr]]
    #: Statically-known ``kwargs=`` entries (None = not a literal dict).
    kwargs_entries: Optional[List[Tuple[str, ast.expr]]]
    #: Statically-known ``key=`` entries (None = no static dict).
    key_entries: Optional[List[Tuple[str, ast.expr]]]
    #: True when the key is literally ``None`` (or absent): uncached cell.
    key_is_none: bool

    @property
    def line(self) -> int:
        return self.call.lineno

    def key_names(self) -> List[str]:
        return [name for name, _ in (self.key_entries or [])]


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _key_dict(expr: Optional[ast.expr]) -> Tuple[
    Optional[List[Tuple[str, ast.expr]]], bool
]:
    """Decompose a ``key=`` expression into (entries, is_none).

    ``key=None if traced else dict(...)`` (either branch order) takes
    the dict branch: the cached shape is what the completeness contract
    governs, the None branch is the explicit cache opt-out.
    """
    if expr is None:
        return None, True
    if isinstance(expr, ast.Constant) and expr.value is None:
        return None, True
    if isinstance(expr, ast.IfExp):
        for branch in (expr.body, expr.orelse):
            entries = dict_entries(branch)
            if entries is not None:
                return entries, False
        return None, False
    entries = dict_entries(expr)
    return entries, False


def collect_cell_sites(
    model: ProgramModel, config: LintConfig
) -> List[CellSite]:
    """Every ``CellSpec(...)`` call in the program, in module order."""
    sites: List[CellSite] = []
    for module_name in sorted(model.modules):
        info = model.modules[module_name]
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            scope = model.enclosing_function(node, info)
            qualname = scope.qualname if scope is not None else ""
            resolved = model.resolve_call_name(node, info, qualname)
            if resolved is None:
                continue
            if model.canonical(resolved) != config.cellspec_symbol:
                continue
            key_entries, key_is_none = _key_dict(_keyword(node, "key"))
            sites.append(
                CellSite(
                    call=node,
                    owner=info,
                    function=scope,
                    assignments=scope_chain_map(
                        model.scope_chain(node, info)
                    ),
                    kwargs_entries=dict_entries(
                        _keyword(node, "kwargs") or ast.Dict([], [])
                    ),
                    key_entries=key_entries,
                    key_is_none=key_is_none,
                )
            )
    return sites


def sites_under(
    sites: List[CellSite], functions: List[FunctionInfo]
) -> List[CellSite]:
    """The subset of *sites* lexically inside any of *functions*.

    Sites in closures nested within a listed function count: a factory
    passed as ``build_cells`` builds its cells inside a nested ``def``.
    """
    roots = {function.node for function in functions}
    selected: List[CellSite] = []
    for site in sites:
        parents = site.owner.parents()
        current: Optional[ast.AST] = site.call
        while current is not None:
            if current in roots:
                selected.append(site)
                break
            current = parents.get(current)
    return selected
