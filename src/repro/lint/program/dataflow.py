"""Intra-function dataflow helpers for the REPRO2xx rules.

The facility is reaching-definitions shaped but name-granular: for a
scope we record which expressions each local name was assigned from
(flow-insensitively — every assignment reaches), and
:func:`expand_refs` closes a set of names over those assignments.  Two
values are considered to share provenance when their expanded name sets
intersect; that is exactly the question the cache-key and RNG rules
ask ("does this kwarg's value derive from anything the cache key also
derives from?", "does this argument derive from a tainted stream?").

Flow-insensitivity over-approximates reachability, which for these
rules errs toward *fewer* findings on the coverage check (a name is
credited with every definition it ever had) and is compensated on the
taint check by seeding taint only from unambiguous generator sources.
"""

import ast
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

#: Transitive closure depth for :func:`expand_refs` — derivation chains
#: in this tree are at most two assignments deep.
EXPANSION_DEPTH = 4

_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Lambda,
)


def names_loaded(node: ast.AST) -> Set[str]:
    """Every plain name read anywhere under *node*."""
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
    }


def _bind_target(
    target: ast.expr, value: ast.expr, table: Dict[str, List[ast.expr]]
) -> None:
    if isinstance(target, ast.Name):
        table.setdefault(target.id, []).append(value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        # Unpacking: every element derives from the whole RHS.
        for element in target.elts:
            _bind_target(element, value, table)
    elif isinstance(target, ast.Starred):
        _bind_target(target.value, value, table)


def assignment_map(scope: ast.AST) -> Dict[str, List[ast.expr]]:
    """Name -> RHS expressions assigned within *scope*'s own body.

    Walks compound statements (``if``/``for``/``while``/``with``/
    ``try``) but does not descend into nested function, class, or
    lambda scopes — those get their own map, merged outer-to-inner by
    :func:`scope_chain_map`.  ``for`` targets bind to the iterable
    (a loop variable derives from whatever it iterates), ``with ... as``
    targets to the context expression.
    """
    table: Dict[str, List[ast.expr]] = {}

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    _bind_target(target, child.value, table)
            elif isinstance(child, ast.AnnAssign):
                if child.value is not None:
                    _bind_target(child.target, child.value, table)
            elif isinstance(child, ast.AugAssign):
                _bind_target(child.target, child.value, table)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                _bind_target(child.target, child.iter, table)
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if item.optional_vars is not None:
                        _bind_target(
                            item.optional_vars, item.context_expr, table
                        )
            elif isinstance(child, ast.NamedExpr):
                _bind_target(child.target, child.value, table)
            visit(child)

    visit(scope)
    return table


def scope_chain_map(
    scopes: Sequence[ast.AST],
) -> Dict[str, List[ast.expr]]:
    """Merged assignment map over a lexical scope chain, outermost first.

    Inner assignments extend (rather than replace) outer ones: the
    expansion is flow-insensitive, so keeping every definition is the
    consistent over-approximation.
    """
    merged: Dict[str, List[ast.expr]] = {}
    for scope in scopes:
        for name, values in assignment_map(scope).items():
            merged.setdefault(name, []).extend(values)
    return merged


def expand_refs(
    names: Iterable[str],
    assignments: Mapping[str, List[ast.expr]],
    depth: int = EXPANSION_DEPTH,
) -> Set[str]:
    """Close *names* over *assignments*: add the names each one derives
    from, transitively up to *depth* assignment hops."""
    result: Set[str] = set(names)
    frontier: Set[str] = set(names)
    for _ in range(depth):
        grown: Set[str] = set()
        for name in frontier:
            for value in assignments.get(name, ()):
                grown |= names_loaded(value)
        grown -= result
        if not grown:
            return result
        result |= grown
        frontier = grown
    return result


def dict_entries(
    node: ast.AST,
) -> Optional[List[Tuple[str, ast.expr]]]:
    """(key, value) pairs of a statically-known dict expression.

    Handles dict displays with constant-string keys and ``dict(...)``
    keyword calls.  ``**spread`` entries and non-string keys make the
    dict non-static: returns ``None`` so callers skip rather than
    half-check.
    """
    if isinstance(node, ast.Dict):
        entries: List[Tuple[str, ast.expr]] = []
        for key, value in zip(node.keys, node.values):
            if (
                key is None
                or not isinstance(key, ast.Constant)
                or not isinstance(key.value, str)
            ):
                return None
            entries.append((key.value, value))
        return entries
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "dict"
        and not node.args
    ):
        entries = []
        for keyword in node.keywords:
            if keyword.arg is None:
                return None
            entries.append((keyword.arg, keyword.value))
        return entries
    return None


def string_tuple(node: ast.AST) -> Optional[List[str]]:
    """The element values of a tuple/list of string constants, else None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: List[str] = []
    for element in node.elts:
        if not isinstance(element, ast.Constant) or not isinstance(
            element.value, str
        ):
            return None
        values.append(element.value)
    return values


def string_set(node: ast.AST) -> Optional[List[str]]:
    """Element values of a set/frozenset/tuple of string constants.

    Accepts a set display, a tuple/list display, or a
    ``frozenset({...})`` / ``set({...})`` / ``frozenset((...))`` call
    around one.
    """
    if isinstance(node, ast.Set):
        values: List[str] = []
        for element in node.elts:
            if not isinstance(element, ast.Constant) or not isinstance(
                element.value, str
            ):
                return None
            values.append(element.value)
        return values
    direct = string_tuple(node)
    if direct is not None:
        return direct
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
        and len(node.args) == 1
        and not node.keywords
    ):
        return string_set(node.args[0])
    return None


def is_constant_only(node: ast.AST) -> bool:
    """True when *node* reads no names (pure constant expression)."""
    return not names_loaded(node)
