"""REPRO203: the columnar envelope's three slug sets must agree.

The columnar backend's applicability envelope is described in three
places that PR 6 synced by hand: the ``(slug, message)`` pairs
:func:`unsupported_reasons` emits, the declared
:data:`FALLBACK_SLUGS` registry, and the
``backend.fallback_reason.<slug>`` counters the experiment layer
increments per fallback.  A fourth coupling is the resolver dispatch
table itself: every :class:`OperatingMode` member must have an entry in
``_MODE_RESOLVERS``, or widening the mode enum silently routes a mode
to a runtime error.  This rule checks all four against each other from
the AST alone.
"""

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo
from repro.lint.findings import Finding
from repro.lint.program.base import ProgramRule
from repro.lint.program.dataflow import string_tuple
from repro.lint.program.model import ProgramModel


class EnvelopeSyncRule(ProgramRule):
    rule_id = "REPRO203"
    name = "envelope-sync"
    description = (
        "unsupported_reasons slugs, FALLBACK_SLUGS, fallback-reason "
        "counters, and the mode-resolver table must stay consistent"
    )

    def check(
        self, model: ProgramModel, config: LintConfig
    ) -> Iterator[Finding]:
        columnar = model.modules.get(config.columnar_module)
        if columnar is None:
            return  # columnar module outside the analyzed set

        declared = _declared_slugs(model, columnar, config)
        if declared is None:
            yield columnar.finding(
                columnar.tree,
                self.rule_id,
                f"{config.fallback_slugs_name} must be a module-level "
                f"tuple of string literals so the envelope is "
                f"statically auditable",
            )
            return

        yield from self._check_emitted(columnar, config, declared)
        yield from self._check_resolver_table(model, columnar, config)
        yield from self._check_counters(model, config, declared)

    def _check_emitted(
        self,
        columnar: ModuleInfo,
        config: LintConfig,
        declared: Set[str],
    ) -> Iterator[Finding]:
        """Slugs emitted by ``unsupported_reasons`` == declared slugs."""
        function = _module_function(
            columnar, config.unsupported_fn_name
        )
        if function is None:
            return
        emitted: Set[str] = set()
        nodes: dict = {}
        for node in ast.walk(function):
            slug = _reason_slug(node)
            if slug is not None:
                emitted.add(slug)
                nodes.setdefault(slug, node)
        for slug in sorted(emitted - declared):
            yield columnar.finding(
                nodes[slug],
                self.rule_id,
                f"{config.unsupported_fn_name}() emits slug {slug!r} "
                f"that {config.fallback_slugs_name} does not declare",
            )
        for slug in sorted(declared - emitted):
            yield columnar.finding(
                function,
                self.rule_id,
                f"{config.fallback_slugs_name} declares slug {slug!r} "
                f"that {config.unsupported_fn_name}() never emits",
            )

    def _check_resolver_table(
        self,
        model: ProgramModel,
        columnar: ModuleInfo,
        config: LintConfig,
    ) -> Iterator[Finding]:
        """``_MODE_RESOLVERS`` keys cover OperatingMode exactly."""
        members = _enum_members(model, config)
        if members is None:
            return  # modes module outside the analyzed set
        table = model.module_assignments(columnar).get(
            config.mode_resolvers_name
        )
        if not isinstance(table, ast.Dict):
            yield columnar.finding(
                columnar.tree,
                self.rule_id,
                f"{config.mode_resolvers_name} must be a module-level "
                f"dict literal keyed by OperatingMode members",
            )
            return
        keyed: Set[str] = set()
        for key in table.keys:
            if isinstance(key, ast.Attribute):
                keyed.add(key.attr)
        for member in sorted(members - keyed):
            yield columnar.finding(
                table,
                self.rule_id,
                f"{config.mode_resolvers_name} has no resolver for "
                f"OperatingMode.{member}",
            )
        for member in sorted(keyed - members):
            yield columnar.finding(
                table,
                self.rule_id,
                f"{config.mode_resolvers_name} keys unknown mode "
                f"OperatingMode.{member}",
            )

    def _check_counters(
        self,
        model: ProgramModel,
        config: LintConfig,
        declared: Set[str],
    ) -> Iterator[Finding]:
        """Literal fallback-reason counter names use declared slugs."""
        prefix = config.fallback_metric_prefix
        for module_name in sorted(model.modules):
            info = model.modules[module_name]
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Constant) or not isinstance(
                    node.value, str
                ):
                    continue
                if not node.value.startswith(prefix):
                    continue
                slug = node.value[len(prefix):]
                if slug and slug not in declared:
                    yield info.finding(
                        node,
                        self.rule_id,
                        f"fallback counter {node.value!r} names slug "
                        f"{slug!r} that "
                        f"{config.fallback_slugs_name} does not declare",
                    )


def _declared_slugs(
    model: ProgramModel, columnar: ModuleInfo, config: LintConfig
) -> Optional[Set[str]]:
    expr = model.module_assignments(columnar).get(
        config.fallback_slugs_name
    )
    if expr is None:
        return None
    values = string_tuple(expr)
    if values is None:
        return None
    return set(values)


def _module_function(info: ModuleInfo, name: str) -> Optional[ast.AST]:
    for node in info.tree.body:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name
        ):
            return node
    return None


def _reason_slug(node: ast.AST) -> Optional[str]:
    """The slug of a literal ``(slug, message)`` reason pair."""
    if not isinstance(node, ast.Tuple) or len(node.elts) != 2:
        return None
    first, second = node.elts
    if not isinstance(first, ast.Constant) or not isinstance(
        first.value, str
    ):
        return None
    if isinstance(second, ast.Constant) and not isinstance(
        second.value, str
    ):
        return None
    return first.value


def _enum_members(
    model: ProgramModel, config: LintConfig
) -> Optional[Set[str]]:
    """OperatingMode member names, parsed from the modes module body."""
    modes = model.modules.get(config.modes_module)
    if modes is None:
        return None
    for node in modes.tree.body:
        if (
            isinstance(node, ast.ClassDef)
            and node.name == config.mode_enum_name
        ):
            members: Set[str] = set()
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            members.add(target.id)
            return members
    return None
