"""Base class for whole-program (REPRO2xx) rules."""

from typing import TYPE_CHECKING, Iterator

from repro.lint.config import LintConfig
from repro.lint.findings import Finding

if TYPE_CHECKING:
    from repro.lint.program.model import ProgramModel


class ProgramRule:
    """One cross-module consistency check.

    Unlike per-file :class:`repro.lint.rules.base.Rule`, a program rule
    sees the whole :class:`~repro.lint.program.model.ProgramModel` at
    once — symbol table, import graph, approximate call graph — and may
    relate declarations in one module to uses in another.  Rules must
    still be pure functions of the model (no filesystem access, no
    state between runs) so the report is reproducible.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check(
        self, model: "ProgramModel", config: LintConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.rule_id!r})"
