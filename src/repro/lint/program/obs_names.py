"""REPRO204: metric and trace-event names must be declared.

A typo in a metric name silently forks a counter; a typo in a trace
kind makes two traces diff as divergent when they are not.  Every name
handed to ``MetricsRegistry.counter/gauge/histogram`` or
``Tracer.emit`` must therefore appear in the declared registries of
:mod:`repro.obs.names` — checked statically here, so the drift is a
lint failure rather than a dashboard mystery.

Literal names are checked directly; f-string names must lead with a
declared dynamic prefix (``backend.fallback_reason.``); and wrapper
functions whose *parameter* supplies the name (``ResultCache._count``)
are summarised so their literal call sites are checked too.  Names
that arrive through arbitrary expressions stay out of static reach and
are skipped.
"""

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo
from repro.lint.findings import Finding
from repro.lint.program.base import ProgramRule
from repro.lint.program.dataflow import string_set, string_tuple
from repro.lint.program.model import ProgramModel

#: MetricsRegistry factory methods whose first argument is a metric name.
_METRIC_METHODS = ("counter", "gauge", "histogram")
#: Tracer method whose first argument is an event kind.
_EMIT_METHOD = "emit"


class _Declared:
    def __init__(
        self,
        metric_names: Set[str],
        metric_prefixes: Tuple[str, ...],
        event_names: Set[str],
    ) -> None:
        self.metric_names = metric_names
        self.metric_prefixes = metric_prefixes
        self.event_names = event_names

    def metric_ok(self, name: str) -> bool:
        return name in self.metric_names or name.startswith(
            self.metric_prefixes
        )

    def prefix_ok(self, leading: str) -> bool:
        return bool(self.metric_prefixes) and leading.startswith(
            self.metric_prefixes
        )


class ObsNameDriftRule(ProgramRule):
    rule_id = "REPRO204"
    name = "obs-name-drift"
    description = (
        "metric and trace-event names emitted through repro.obs must "
        "match the constants declared in the names registry"
    )

    def check(
        self, model: ProgramModel, config: LintConfig
    ) -> Iterator[Finding]:
        declared = _declared_names(model, config)
        if declared is None:
            return  # names registry outside the analyzed set
        wrappers = _name_wrappers(model)
        names_module = config.obs_names_module
        for module_name in sorted(model.modules):
            if module_name == names_module:
                continue
            info = model.modules[module_name]
            yield from self._check_module(
                model, info, declared, wrappers
            )

    def _check_module(
        self,
        model: ProgramModel,
        info: ModuleInfo,
        declared: _Declared,
        wrappers: Dict[str, List[int]],
    ) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in _METRIC_METHODS and node.args:
                    yield from self._check_metric_arg(
                        info, node.args[0], declared
                    )
                elif node.func.attr == _EMIT_METHOD and node.args:
                    yield from self._check_event_arg(
                        info, node.args[0], declared
                    )
            # Wrapper call sites: literal arguments feeding a
            # name-forwarding parameter are metric names too.
            scope = model.enclosing_function(node, info)
            qualname = scope.qualname if scope is not None else ""
            resolved = model.resolve_call_name(node, info, qualname)
            if resolved is not None and resolved in wrappers:
                for index in wrappers[resolved]:
                    if index < len(node.args):
                        yield from self._check_metric_arg(
                            info, node.args[index], declared
                        )

    def _check_metric_arg(
        self, info: ModuleInfo, arg: ast.expr, declared: _Declared
    ) -> Iterator[Finding]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if not declared.metric_ok(arg.value):
                yield info.finding(
                    arg,
                    self.rule_id,
                    f"metric name {arg.value!r} is not declared in the "
                    f"names registry (METRIC_NAMES/METRIC_PREFIXES)",
                )
        elif isinstance(arg, ast.JoinedStr):
            leading = _leading_literal(arg)
            if leading is None or not declared.prefix_ok(leading):
                yield info.finding(
                    arg,
                    self.rule_id,
                    "dynamic metric name must start with a declared "
                    "METRIC_PREFIXES entry",
                )

    def _check_event_arg(
        self, info: ModuleInfo, arg: ast.expr, declared: _Declared
    ) -> Iterator[Finding]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value not in declared.event_names:
                yield info.finding(
                    arg,
                    self.rule_id,
                    f"trace-event kind {arg.value!r} is not declared in "
                    f"the names registry (EVENT_NAMES)",
                )


def _declared_names(
    model: ProgramModel, config: LintConfig
) -> Optional[_Declared]:
    info = model.modules.get(config.obs_names_module)
    if info is None:
        return None
    table = model.module_assignments(info)
    metric_names = _string_values(table.get("METRIC_NAMES"), string_set)
    prefixes = _string_values(table.get("METRIC_PREFIXES"), string_tuple)
    event_names = _string_values(table.get("EVENT_NAMES"), string_set)
    if metric_names is None or prefixes is None or event_names is None:
        return None
    return _Declared(
        metric_names=set(metric_names),
        metric_prefixes=tuple(prefixes),
        event_names=set(event_names),
    )


def _string_values(expr, parser) -> Optional[List[str]]:
    if expr is None:
        return None
    return parser(expr)


def _leading_literal(joined: ast.JoinedStr) -> Optional[str]:
    if not joined.values:
        return None
    first = joined.values[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


def _name_wrappers(model: ProgramModel) -> Dict[str, List[int]]:
    """Functions whose parameter is forwarded as a metric name.

    Maps a function's full name to the *positional* indices (``self``
    excluded) of parameters that reach a metric-name position in its
    body — e.g. ``ResultCache._count(self, name)`` maps to ``[0]``.
    One level deep: wrappers of wrappers stay out of static reach.
    """
    wrappers: Dict[str, List[int]] = {}
    for full_name, function in model.functions.items():
        positional = function.positional_params
        if not positional:
            continue
        forwarded: Set[str] = set()
        for node in ast.walk(function.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_METHODS
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                forwarded.add(node.args[0].id)
        indices = [
            index
            for index, param in enumerate(positional)
            if param in forwarded
        ]
        if indices:
            wrappers[full_name] = indices
    return wrappers
