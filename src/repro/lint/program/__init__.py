"""Whole-program analysis (the REPRO2xx rules).

Where :mod:`repro.lint.rules` checks one file at a time, this package
builds a :class:`~repro.lint.program.model.ProgramModel` — symbol
table, import graph, approximate call graph — over the whole tree plus
a dataflow facility (:mod:`~repro.lint.program.dataflow`), and runs
four interprocedural consistency rules on top:

=========  ======================  ====================================
ID         name                    catches
=========  ======================  ====================================
REPRO201   cache-key-              result-influencing cell parameters
           completeness            absent from cache keys / schemas
REPRO202   rng-stream-escape       numpy Generator streams crossing
                                   cell boundaries or derived outside
                                   the seeding discipline
REPRO203   envelope-sync           columnar fallback slugs, resolver
                                   table, and counters drifting apart
REPRO204   obs-name-drift          undeclared metric / trace-event
                                   names
=========  ======================  ====================================

Run it with ``python -m repro.lint --program src/repro``.
"""

from typing import List, Tuple

from repro.lint.program.base import ProgramRule
from repro.lint.program.cache_keys import CacheKeyCompletenessRule
from repro.lint.program.envelope import EnvelopeSyncRule
from repro.lint.program.model import FunctionInfo, ProgramModel
from repro.lint.program.obs_names import ObsNameDriftRule
from repro.lint.program.rng_streams import RngStreamEscapeRule

_PROGRAM_RULE_CLASSES: Tuple[type, ...] = (
    CacheKeyCompletenessRule,
    RngStreamEscapeRule,
    EnvelopeSyncRule,
    ObsNameDriftRule,
)


def all_program_rules() -> List[ProgramRule]:
    """Fresh instances of every program rule, in rule-ID order."""
    return [cls() for cls in _PROGRAM_RULE_CLASSES]


__all__ = [
    "CacheKeyCompletenessRule",
    "EnvelopeSyncRule",
    "FunctionInfo",
    "ObsNameDriftRule",
    "ProgramModel",
    "ProgramRule",
    "RngStreamEscapeRule",
    "all_program_rules",
]
