"""REPRO201: cache-key completeness for experiment cells.

The result cache replays a cell whenever its key matches, so every
result-influencing cell parameter must be folded into the key — and the
spec's ``cache_schema`` must name exactly the fields the keys carry.
PR 5 added a ``backend`` kwarg that changed which code computed a cell
without adding it to the keys; stale event-path results then satisfied
columnar-path lookups.  This rule catches that shape statically, two
ways:

**Site check** — at every ``CellSpec(...)`` construction, each kwarg
that (a) is not observability plumbing, (b) is not a pure constant, and
(c) does not share dataflow provenance with any cache-key value must be
flagged.  Provenance is compared through :mod:`~.dataflow.expand_refs`,
so renames (``detection_name=name`` keyed as ``detection=name``) and
transforms (``profile=repr(profile)``, ``scenario=scenario.name``) are
recognised as coverage.

**Schema check** — for every registered non-composite
:class:`ExperimentSpec`, the ``cache_schema`` must equal the union of
key-field names over every ``CellSpec`` site reachable from its
``build_cells`` entry (through the approximate call graph, factory
closures included).  Schema drift in either direction is a finding.
"""

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.program.base import ProgramRule
from repro.lint.program.dataflow import (
    expand_refs,
    names_loaded,
    string_tuple,
)
from repro.lint.program.model import FunctionInfo, ProgramModel
from repro.lint.program.sites import (
    CellSite,
    collect_cell_sites,
    sites_under,
)


class CacheKeyCompletenessRule(ProgramRule):
    rule_id = "REPRO201"
    name = "cache-key-completeness"
    description = (
        "every result-influencing cell parameter must reach the cache "
        "key, and cache_schema must match the keys cells actually build"
    )

    def check(
        self, model: ProgramModel, config: LintConfig
    ) -> Iterator[Finding]:
        sites = collect_cell_sites(model, config)
        for site in sites:
            yield from self._check_site(site, config)
        for spec in _registered_specs(model, config):
            yield from self._check_schema(model, config, spec, sites)

    def _check_site(
        self, site: CellSite, config: LintConfig
    ) -> Iterator[Finding]:
        if site.key_is_none and site.key_entries is None:
            return  # explicitly uncached cell
        if site.kwargs_entries is None or site.key_entries is None:
            return  # dynamically built: out of static reach
        key_names = set(site.key_names())
        key_refs: Set[str] = set()
        for _, value in site.key_entries:
            key_refs |= expand_refs(names_loaded(value), site.assignments)
        imports = site.owner.imports
        for name, value in site.kwargs_entries:
            if name in config.cell_observability_params:
                continue
            if name in key_names:
                continue
            # Kwarg-side expansion is one hop only: it recognises a
            # local alias (``backend=cell_backend`` keyed through the
            # same alias) without crediting coverage through unrelated
            # second-order derivations — a value computed *from* the
            # trace path must not count as covered merely because the
            # path string interpolates keyed loop variables.  Key-side
            # expansion stays deep: everything the key transitively
            # derives from genuinely is key provenance.
            refs = {
                ref
                for ref in expand_refs(
                    names_loaded(value), site.assignments, depth=1
                )
                if not imports.binds(ref)
            }
            if not refs:
                continue  # constant-only value: not a swept parameter
            if refs & key_refs:
                continue
            yield site.owner.finding(
                value,
                self.rule_id,
                f"cell kwarg {name!r} influences the result but shares "
                f"no dataflow with the cache key "
                f"(key fields: {', '.join(sorted(key_names)) or 'none'})",
            )

    def _check_schema(
        self,
        model: ProgramModel,
        config: LintConfig,
        spec: "_SpecRegistration",
        sites: List[CellSite],
    ) -> Iterator[Finding]:
        if spec.schema is None or spec.builder is None:
            return
        reachable = model.reachable(spec.builder)
        produced: Set[str] = set()
        keyed_sites = 0
        for site in sites_under(sites, reachable):
            if site.key_entries is None:
                continue
            keyed_sites += 1
            produced |= set(site.key_names())
        if not keyed_sites:
            return  # nothing statically keyed under this builder
        schema = set(spec.schema)
        missing = sorted(produced - schema)
        if missing:
            yield spec.owner_finding(
                self.rule_id,
                f"cache_schema of spec {spec.name!r} is missing key "
                f"field(s) {', '.join(missing)} that its cells produce",
            )
        stale = sorted(schema - produced)
        if stale:
            yield spec.owner_finding(
                self.rule_id,
                f"cache_schema of spec {spec.name!r} declares field(s) "
                f"{', '.join(stale)} that no reachable cell key produces",
            )


class _SpecRegistration:
    """One ``ExperimentSpec(...)`` call with its statically-known parts."""

    def __init__(
        self,
        call: ast.Call,
        owner_info,
        name: str,
        builder: Optional[FunctionInfo],
        schema: Optional[List[str]],
    ) -> None:
        self.call = call
        self.owner = owner_info
        self.name = name
        self.builder = builder
        self.schema = schema

    def owner_finding(self, rule_id: str, message: str) -> Finding:
        return self.owner.finding(self.call, rule_id, message)


def _registered_specs(
    model: ProgramModel, config: LintConfig
) -> List["_SpecRegistration"]:
    specs: List[_SpecRegistration] = []
    for module_name in sorted(model.modules):
        info = model.modules[module_name]
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            scope = model.enclosing_function(node, info)
            qualname = scope.qualname if scope is not None else ""
            resolved = model.resolve_call_name(node, info, qualname)
            if resolved is None:
                continue
            if model.canonical(resolved) != config.spec_symbol:
                continue
            keywords: Dict[str, ast.expr] = {
                keyword.arg: keyword.value
                for keyword in node.keywords
                if keyword.arg is not None
            }
            if "composite" in keywords:
                continue  # composite specs orchestrate, they don't key
            name_expr = keywords.get("name")
            name = (
                name_expr.value
                if isinstance(name_expr, ast.Constant)
                and isinstance(name_expr.value, str)
                else "<unknown>"
            )
            specs.append(
                _SpecRegistration(
                    call=node,
                    owner_info=info,
                    name=name,
                    builder=_resolve_builder(
                        model, info, qualname, keywords.get("build_cells")
                    ),
                    schema=_resolve_schema(
                        model, info, keywords.get("cache_schema")
                    ),
                )
            )
    return specs


def _resolve_builder(
    model: ProgramModel,
    info,
    qualname: str,
    expr: Optional[ast.expr],
) -> Optional[FunctionInfo]:
    """The function ``build_cells`` names — directly or via a factory.

    A factory call (``build_cells=_figure_builder("fig7", ...)``)
    resolves to the factory: its closures, and everything they call,
    are inside its node, so reachability walks them.
    """
    if expr is None:
        return None
    if isinstance(expr, ast.Name):
        resolved = model.resolve_name(expr.id, info, qualname)
    elif isinstance(expr, ast.Call):
        resolved = model.resolve_call_name(expr, info, qualname)
    else:
        return None
    if resolved is None:
        return None
    return model.functions.get(resolved)


def _resolve_schema(
    model: ProgramModel, info, expr: Optional[ast.expr]
) -> Optional[List[str]]:
    """``cache_schema`` field names: a tuple literal or a module constant."""
    if expr is None:
        return None
    direct = string_tuple(expr)
    if direct is not None:
        return direct
    if isinstance(expr, ast.Name):
        assigned = model.module_assignments(info).get(expr.id)
        if assigned is not None:
            return string_tuple(assigned)
    return None
