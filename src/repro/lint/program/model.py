"""The whole-program model: symbol table, exports, approximate call graph.

:class:`ProgramModel` is built once per run from every parsed
:class:`~repro.lint.engine.ModuleInfo` and shared by all REPRO2xx
rules.  Everything here is purely syntactic — nothing under analysis is
ever imported — so fixtures can impersonate canonical modules with a
``# repro-lint: module=...`` override and a broken tree can still be
analyzed.

Resolution is deliberately approximate in the same spirit as
:mod:`repro.lint.imports`: dotted references are rewritten through
import bindings and package-``__init__`` re-exports, ``self.method``
resolves within the enclosing class, and bare names resolve to
module-local (or lexically enclosing) definitions.  First-class
function values, dynamic dispatch and monkeypatching escape — accepted
approximations, ratcheted by the fact that the checked call sites
(spec registrations, cell builders, metric emissions) are all direct
calls in this codebase.
"""

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import ModuleInfo
from repro.lint.imports import dotted_name

#: Re-export chasing and call-graph BFS depth caps.  Both are far above
#: anything the tree needs (exports chain once, builder call chains are
#: two deep); they bound pathological fixture inputs.
EXPORT_CHASE_DEPTH = 5
REACHABILITY_DEPTH = 8


@dataclass
class FunctionInfo:
    """One function or method definition somewhere in the program."""

    module: str
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    owner: ModuleInfo

    @property
    def full_name(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def param_names(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in args.posonlyargs + args.args]
        names.extend(a.arg for a in args.kwonlyargs)
        return names

    @property
    def positional_params(self) -> List[str]:
        """Positional parameter names, ``self``/``cls`` stripped for methods."""
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in args.posonlyargs + args.args]
        if "." in self.qualname and names and names[0] in ("self", "cls"):
            return names[1:]
        return names


def _collect_functions(info: ModuleInfo) -> List[FunctionInfo]:
    """Every (possibly nested) function in *info*, with dotted qualnames."""
    found: List[FunctionInfo] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                found.append(
                    FunctionInfo(
                        module=info.module,
                        qualname=qualname,
                        node=child,
                        owner=info,
                    )
                )
                visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(info.tree, "")
    return found


@dataclass
class ProgramModel:
    """Symbol table + import graph + approximate call graph."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    by_path: Dict[str, ModuleInfo] = field(default_factory=dict)
    by_node: Dict[ast.AST, FunctionInfo] = field(default_factory=dict)

    @classmethod
    def build(cls, infos: Sequence[ModuleInfo]) -> "ProgramModel":
        model = cls()
        for info in infos:
            model.modules[info.module] = info
            model.by_path[str(info.path)] = info
            for function in _collect_functions(info):
                model.functions[function.full_name] = function
                model.by_node[function.node] = function
        return model

    def scope_chain(
        self, node: ast.AST, info: ModuleInfo
    ) -> List[ast.AST]:
        """Lexical scope chain of *node*, outermost (the module) first."""
        parents = info.parents()
        chain: List[ast.AST] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                chain.append(current)
            current = parents.get(current)
        chain.append(info.tree)
        return list(reversed(chain))

    def enclosing_function(
        self, node: ast.AST, info: ModuleInfo
    ) -> Optional[FunctionInfo]:
        """The innermost named function containing *node*, if any."""
        parents = info.parents()
        current: Optional[ast.AST] = parents.get(node)
        while current is not None:
            found = self.by_node.get(current)
            if found is not None:
                return found
            current = parents.get(current)
        return None

    def canonical(self, dotted: str) -> str:
        """Chase package-``__init__`` re-exports to a defining module.

        ``repro.pipeline.ExperimentSpec`` canonicalises to
        ``repro.pipeline.spec.ExperimentSpec`` because the package
        ``__init__`` binds the symbol via an import.  Names that don't
        route through an analyzed package come back unchanged.
        """
        for _ in range(EXPORT_CHASE_DEPTH):
            if dotted in self.functions:
                return dotted
            prefix, symbol = self._split_on_module(dotted)
            if prefix is None or not symbol:
                return dotted
            imports = self.modules[prefix].imports
            head, _, rest = symbol.partition(".")
            if not imports.binds(head):
                return dotted
            resolved = imports.resolve(head)
            rewritten = f"{resolved}.{rest}" if rest else resolved
            if rewritten == dotted:
                return dotted
            dotted = rewritten
        return dotted

    def _split_on_module(
        self, dotted: str
    ) -> Tuple[Optional[str], str]:
        """Split *dotted* at its longest analyzed-module prefix."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, ".".join(parts[cut:])
        return None, dotted

    def resolve_name(
        self, name: str, owner: ModuleInfo, qualname: str = ""
    ) -> Optional[str]:
        """Canonical dotted name *name* refers to at a point in *owner*.

        *qualname* is the dotted qualname of the referencing scope
        (empty for module level).  Tries, in order: the enclosing class
        for ``self.x`` references, lexically enclosing nested
        definitions (innermost first), module-local definitions, then
        the module's import bindings (with re-export chasing).
        Returns ``None`` when nothing matches.
        """
        head, _, rest = name.partition(".")
        module = owner.module

        if head in ("self", "cls") and rest and "." in qualname:
            class_prefix = qualname.rsplit(".", 1)[0]
            candidate = f"{module}.{class_prefix}.{rest}"
            if candidate in self.functions:
                return candidate

        if qualname:
            qual_parts = qualname.split(".")
            for cut in range(len(qual_parts), 0, -1):
                prefix = ".".join(qual_parts[:cut])
                candidate = f"{module}.{prefix}.{name}"
                if candidate in self.functions:
                    return candidate

        local = f"{module}.{name}"
        if local in self.functions:
            return local

        if owner.imports.binds(head):
            return self.canonical(owner.imports.resolve(name))
        return None

    def resolve_symbol(
        self, name: str, scope: FunctionInfo
    ) -> Optional[str]:
        """:meth:`resolve_name` from inside a known function scope."""
        return self.resolve_name(name, scope.owner, scope.qualname)

    def resolve_call_name(
        self,
        call: ast.Call,
        owner: ModuleInfo,
        qualname: str = "",
    ) -> Optional[str]:
        """Canonical dotted name a call dispatches to, if static."""
        name = dotted_name(call.func)
        if name is None:
            return None
        return self.resolve_name(name, owner, qualname)

    def resolve_function(
        self, call: ast.Call, scope: FunctionInfo
    ) -> Optional[FunctionInfo]:
        resolved = self.resolve_call_name(call, scope.owner, scope.qualname)
        if resolved is None:
            return None
        return self.functions.get(resolved)

    def calls_in(self, function: FunctionInfo) -> List[ast.Call]:
        """Every call under *function*, nested definitions included."""
        return [
            node
            for node in ast.walk(function.node)
            if isinstance(node, ast.Call)
        ]

    def callees(self, function: FunctionInfo) -> List[FunctionInfo]:
        """Functions *function* (or its nested closures) may call."""
        seen: Set[str] = set()
        out: List[FunctionInfo] = []
        for call in self.calls_in(function):
            target = self.resolve_function(call, function)
            if target is not None and target.full_name not in seen:
                seen.add(target.full_name)
                out.append(target)
        return out

    def reachable(
        self, root: FunctionInfo, depth: int = REACHABILITY_DEPTH
    ) -> List[FunctionInfo]:
        """BFS over the approximate call graph, *root* included."""
        visited: Dict[str, FunctionInfo] = {root.full_name: root}
        frontier = [root]
        for _ in range(depth):
            next_frontier: List[FunctionInfo] = []
            for function in frontier:
                for callee in self.callees(function):
                    if callee.full_name not in visited:
                        visited[callee.full_name] = callee
                        next_frontier.append(callee)
            if not next_frontier:
                break
            frontier = next_frontier
        return list(visited.values())

    def module_assignments(
        self, info: ModuleInfo
    ) -> Dict[str, ast.expr]:
        """Module-level ``name = expr`` bindings (last assignment wins)."""
        table: Dict[str, ast.expr] = {}
        for node in info.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        table[target.id] = node.value
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    table[node.target.id] = node.value
        return table
