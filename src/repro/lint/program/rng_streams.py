"""REPRO202: RNG streams must not escape across cell boundaries.

Bit-reproducibility for any ``jobs`` value rests on every parallel cell
deriving its randomness from an explicit integer seed inside the cell
function.  A live ``numpy.random.Generator`` that leaks into cell
kwargs is consumed in pool-scheduling order — the interprocedural shape
of the retry RNG race PR 3 fixed by hand.  This rule taint-tracks
generator values across function boundaries:

* **taint seeds** — values returned by ``spawn_generator``, by
  ``SeedSequenceFactory.generator(...)``-style calls, by ``.spawn()``,
  or arriving through parameters that are generators (by annotation or
  by the ``rng``/``*_rng``/``generator``/``*_generator`` naming
  convention);
* **violations** — a tainted value reaching ``CellSpec`` kwargs
  (directly, or through a callee parameter that flows into cell kwargs
  — tracked with per-function summaries iterated to a fixpoint), a
  ``.spawn()`` child derivation outside the seeding module (children
  must come from :func:`~repro.common.seeding.spawn_generator` so
  stream ancestry stays auditable), and a module-level generator
  (shared state across cells and workers).
"""

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo
from repro.lint.findings import Finding
from repro.lint.imports import dotted_name
from repro.lint.program.base import ProgramRule
from repro.lint.program.dataflow import (
    expand_refs,
    names_loaded,
    scope_chain_map,
)
from repro.lint.program.model import FunctionInfo, ProgramModel
from repro.lint.program.sites import collect_cell_sites, sites_under

#: Parameter names treated as generator-carrying by convention.
_RNG_PARAM_NAMES = ("rng", "generator")
_RNG_PARAM_SUFFIXES = ("_rng", "_generator")

#: Fixpoint bound for sink-parameter propagation (call chains feeding
#: cell kwargs are at most two hops in this tree).
_SUMMARY_ROUNDS = 6


def _is_rng_param_name(name: str) -> bool:
    return name in _RNG_PARAM_NAMES or name.endswith(_RNG_PARAM_SUFFIXES)


def _annotation_is_generator(
    annotation: Optional[ast.expr], info: ModuleInfo
) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        return annotation.value.endswith("random.Generator")
    name = dotted_name(annotation)
    if name is None:
        return False
    return info.imports.resolve(name) == "numpy.random.Generator"


def _rng_params(function: FunctionInfo) -> Set[str]:
    """Parameters of *function* that carry a generator."""
    args = function.node.args  # type: ignore[attr-defined]
    tainted: Set[str] = set()
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if _is_rng_param_name(arg.arg) or _annotation_is_generator(
            arg.annotation, function.owner
        ):
            tainted.add(arg.arg)
    return tainted


def _is_stream_call(
    call: ast.Call,
    model: ProgramModel,
    info: ModuleInfo,
    qualname: str,
    config: LintConfig,
) -> bool:
    """True when *call* produces a fresh generator stream."""
    resolved = model.resolve_call_name(call, info, qualname)
    if resolved is not None:
        if resolved == f"{config.seeding_module}.spawn_generator":
            return True
        if resolved.endswith("default_rng"):
            return True
    if isinstance(call.func, ast.Attribute) and call.func.attr in (
        "generator",
        "spawn",
    ):
        return True
    return False


class RngStreamEscapeRule(ProgramRule):
    rule_id = "REPRO202"
    name = "rng-stream-escape"
    description = (
        "numpy Generator streams must not cross cell boundaries or be "
        "derived outside the seeding discipline"
    )

    def check(
        self, model: ProgramModel, config: LintConfig
    ) -> Iterator[Finding]:
        sites = collect_cell_sites(model, config)
        sinks = _sink_params(model, config, sites)

        for module_name in sorted(model.modules):
            info = model.modules[module_name]
            if module_name == config.seeding_module:
                continue
            yield from self._check_module_level(model, info, config)

        for function_name in sorted(model.functions):
            function = model.functions[function_name]
            if function.module == config.seeding_module:
                continue
            yield from self._check_scope(
                model, function, config, sites, sinks
            )

    def _check_module_level(
        self, model: ProgramModel, info: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        for node in info.tree.body:
            values: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                values = [node.value]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                values = [node.value]
            for value in values:
                if isinstance(value, ast.Call) and _is_stream_call(
                    value, model, info, "", config
                ):
                    yield info.finding(
                        value,
                        self.rule_id,
                        "module-level RNG stream: a generator bound at "
                        "import time is shared state across cells and "
                        "worker processes",
                    )

    def _check_scope(
        self,
        model: ProgramModel,
        function: FunctionInfo,
        config: LintConfig,
        sites,
        sinks: Dict[str, Set[str]],
    ) -> Iterator[Finding]:
        info = function.owner
        qualname = function.qualname
        chain = model.scope_chain(function.node, info)
        assignments = scope_chain_map(chain)

        taint: Set[str] = set()
        for scope_node in chain:
            scoped = model.by_node.get(scope_node)
            if scoped is not None:
                taint |= _rng_params(scoped)
        taint |= _rng_params(function)
        # Stream-producing assignments anywhere on the lexical chain
        # taint their target — closures capturing an outer generator
        # count as much as locals.
        for name, rhs_list in assignments.items():
            for rhs in rhs_list:
                if isinstance(rhs, ast.Call) and _is_stream_call(
                    rhs, model, info, qualname, config
                ):
                    taint.add(name)

        def is_tainted(expr: ast.AST) -> bool:
            refs = expand_refs(names_loaded(expr), assignments)
            return bool(refs & taint)

        # Direct escape: a tainted value inside this function's own
        # CellSpec kwargs (closure sites are checked by their innermost
        # function, so each site reports once).
        for site in sites_under(sites, [function]):
            if site.function is not function:
                continue
            for name, value in site.kwargs_entries or []:
                if is_tainted(value):
                    yield info.finding(
                        value,
                        self.rule_id,
                        f"cell kwarg {name!r} receives a live RNG "
                        f"stream; cells must take integer seeds and "
                        f"spawn their own generator",
                    )

        for call in _direct_calls(function.node):
            # Interprocedural escape: tainted argument into a callee
            # parameter that flows into cell kwargs downstream.
            resolved = model.resolve_call_name(call, info, qualname)
            if resolved is not None and resolved in sinks:
                callee = model.functions[resolved]
                for param, arg in _bound_args(call, callee):
                    if param in sinks[resolved] and is_tainted(arg):
                        yield info.finding(
                            arg,
                            self.rule_id,
                            f"passes a live RNG stream to parameter "
                            f"{param!r} of {callee.qualname}(), which "
                            f"flows into parallel cell kwargs",
                        )
            # Undisciplined child streams: .spawn() on a tainted
            # receiver outside the seeding module.
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "spawn"
                and is_tainted(call.func.value)
            ):
                yield info.finding(
                    call,
                    self.rule_id,
                    "child generators must be derived via "
                    f"{config.seeding_module}.spawn_generator (or a "
                    "SeedSequenceFactory stream), not .spawn(), so "
                    "stream ancestry stays auditable",
                )


def _direct_calls(node: ast.AST) -> List[ast.Call]:
    """Calls in *node*'s own body, nested function scopes excluded."""
    calls: List[ast.Call] = []

    def visit(current: ast.AST) -> None:
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            if isinstance(child, ast.Call):
                calls.append(child)
            visit(child)

    visit(node)
    return calls


def _bound_args(call: ast.Call, callee: FunctionInfo):
    """(parameter-name, argument-expr) pairs this call binds."""
    positional = callee.positional_params
    bound = []
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(positional):
            bound.append((positional[index], arg))
    names = set(callee.param_names)
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in names:
            bound.append((keyword.arg, keyword.value))
    return bound


def _sink_params(
    model: ProgramModel, config: LintConfig, sites
) -> Dict[str, Set[str]]:
    """Per-function parameters that flow into ``CellSpec`` kwargs.

    Seeded from functions that build cells directly, then propagated
    caller-ward to a fixpoint: a parameter forwarded into a callee's
    sink parameter is itself a sink.
    """
    sinks: Dict[str, Set[str]] = {}

    for function_name, function in model.functions.items():
        params = set(function.param_names)
        if not params:
            continue
        flowing: Set[str] = set()
        for site in sites_under(sites, [function]):
            for _, value in site.kwargs_entries or []:
                refs = expand_refs(
                    names_loaded(value), site.assignments
                )
                flowing |= params & refs
        if flowing:
            sinks[function_name] = flowing

    for _ in range(_SUMMARY_ROUNDS):
        changed = False
        for function_name, function in model.functions.items():
            params = set(function.param_names)
            if not params:
                continue
            chain_map = scope_chain_map(
                model.scope_chain(function.node, function.owner)
            )
            for call in _direct_calls(function.node):
                resolved = model.resolve_call_name(
                    call, function.owner, function.qualname
                )
                if resolved is None or resolved not in sinks:
                    continue
                if resolved == function_name:
                    continue
                callee = model.functions[resolved]
                for param, arg in _bound_args(call, callee):
                    if param not in sinks[resolved]:
                        continue
                    refs = expand_refs(names_loaded(arg), chain_map)
                    forwarded = params & refs
                    if forwarded - sinks.get(function_name, set()):
                        sinks.setdefault(function_name, set()).update(
                            forwarded
                        )
                        changed = True
        if not changed:
            break
    return sinks
