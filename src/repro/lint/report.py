"""Text and JSON rendering of lint findings."""

import json
from typing import List

from repro.lint.findings import Finding
from repro.lint.version import LINT_VERSION


def render_text(findings: List[Finding], files_checked: int) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"repro.lint {LINT_VERSION}: {len(findings)} {noun} "
        f"in {files_checked} files"
    )
    return "\n".join(lines)


def render_json(findings: List[Finding], files_checked: int) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "version": LINT_VERSION,
        "files_checked": files_checked,
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _escape_annotation(value: str) -> str:
    """Escape a message for a GitHub workflow command payload."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


def render_github(findings: List[Finding], files_checked: int) -> str:
    """GitHub Actions workflow annotations: one ``::error`` per finding.

    Emitted to stdout inside a workflow step, these surface inline on
    the PR diff at the offending line.  The summary line is plain text
    (GitHub ignores non-command lines).
    """
    lines = [
        f"::error file={finding.path},line={finding.line},"
        f"col={finding.column},title={finding.rule_id}::"
        f"{_escape_annotation(finding.message)}"
        for finding in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"repro.lint {LINT_VERSION}: {len(findings)} {noun} "
        f"in {files_checked} files"
    )
    return "\n".join(lines)
