"""Per-line suppressions and module-name overrides.

Two magic comments are recognised:

``# repro-lint: disable=RULE[,RULE...]``
    Suppress the named rules (or ``all``) for findings reported *on that
    physical line*.  Suppressions are deliberately line-scoped — a
    file-wide escape hatch would invite the drift this linter exists to
    prevent.

``# repro-lint: module=dotted.name``
    Pretend the file is the named module when applying scope rules.
    Used by test fixtures that live outside ``src/`` but must exercise
    scoped rules (e.g. the wall-clock ban, which only applies inside
    ``repro.simulation``/``repro.bayes``/``repro.core``).  Only honoured
    within the first :data:`MODULE_OVERRIDE_WINDOW` lines.
"""

import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:
    from repro.lint.findings import Finding

#: How far into a file a ``module=`` override is honoured.
MODULE_OVERRIDE_WINDOW = 10

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)
_MODULE_RE = re.compile(r"#\s*repro-lint:\s*module=([A-Za-z0-9_.]+)")


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule IDs suppressed on them."""
    table: Dict[int, Set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _DISABLE_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            table[number] = {rule for rule in rules if rule}
    return table


def parse_module_override(lines: Sequence[str]) -> Optional[str]:
    """The ``module=`` override near the top of the file, if any."""
    for line in lines[:MODULE_OVERRIDE_WINDOW]:
        match = _MODULE_RE.search(line)
        if match:
            return match.group(1)
    return None


def is_suppressed(
    table: Dict[int, Set[str]], line: int, rule_id: str
) -> bool:
    """True when *rule_id* is disabled on *line* (or ``all`` is)."""
    rules = table.get(line)
    if not rules:
        return False
    return rule_id in rules or "all" in rules


#: A baseline entry: (path, rule id, message).  Deliberately
#: line-insensitive so unrelated edits above an accepted finding don't
#: invalidate the baseline.
BaselineKey = Tuple[str, str, str]


def baseline_key(finding: "Finding") -> BaselineKey:
    return (finding.path, finding.rule_id, finding.message)


def matches_baseline(
    finding: "Finding", baseline: Set[BaselineKey]
) -> bool:
    return baseline_key(finding) in baseline


def load_baseline(path: str) -> Set[BaselineKey]:
    """Load an accepted-findings baseline written by ``--write-baseline``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = payload.get("findings", [])
    return {
        (entry["path"], entry["rule"], entry["message"])
        for entry in entries
    }


def render_baseline(findings: Sequence["Finding"]) -> str:
    """Serialise *findings* as a baseline file (stable order)."""
    entries: List[Dict[str, str]] = [
        {
            "path": finding.path,
            "rule": finding.rule_id,
            "message": finding.message,
        }
        for finding in sorted(findings, key=lambda f: f.sort_key())
    ]
    return json.dumps(
        {"findings": entries}, indent=2, sort_keys=True
    )
