"""Discrete-event simulation substrate (paper Section 5.2).

This subpackage rebuilds the MATLAB event-driven model the paper uses to
evaluate the managed-upgrade architecture:

* :mod:`repro.simulation.engine` — heap-based discrete-event kernel;
* :mod:`repro.simulation.distributions` — latency distributions;
* :mod:`repro.simulation.timing` — the ``T1 + T2(i)`` execution-time model
  of eq. (7) and the system time of eq. (8);
* :mod:`repro.simulation.outcomes` — CR / ER / NER response types;
* :mod:`repro.simulation.correlation` — the marginal (Table 3) and
  conditional (Table 4) outcome models, plus the independence variant;
* :mod:`repro.simulation.release_model` — a release's stochastic behaviour;
* :mod:`repro.simulation.workload` — request stream generators;
* :mod:`repro.simulation.metrics` — MET / outcome-count / NRDT collectors.
"""

from repro.simulation.clock import SimulationClock
from repro.simulation.engine import Event, Simulator
from repro.simulation.distributions import (
    Deterministic,
    Exponential,
    LogNormal,
    ShiftedExponential,
    Uniform,
)
from repro.simulation.outcomes import Outcome, ResponseKind
from repro.simulation.correlation import (
    ChainedOutcomeModel,
    ConditionalOutcomeModel,
    IndependentOutcomeModel,
    JointOutcomeModel,
    OutcomeDistribution,
)
from repro.simulation.timing import ExecutionTimeModel, SystemTimingPolicy
from repro.simulation.release_model import ReleaseBehaviour, SimulatedResponse
from repro.simulation.workload import (
    ClosedLoopWorkload,
    PoissonWorkload,
    Request,
)
from repro.simulation.metrics import (
    OutcomeCounts,
    ReleaseMetrics,
    SystemMetrics,
)

__all__ = [
    "SimulationClock",
    "Event",
    "Simulator",
    "Deterministic",
    "Exponential",
    "LogNormal",
    "ShiftedExponential",
    "Uniform",
    "Outcome",
    "ResponseKind",
    "ChainedOutcomeModel",
    "ConditionalOutcomeModel",
    "IndependentOutcomeModel",
    "JointOutcomeModel",
    "OutcomeDistribution",
    "ExecutionTimeModel",
    "SystemTimingPolicy",
    "ReleaseBehaviour",
    "SimulatedResponse",
    "ClosedLoopWorkload",
    "PoissonWorkload",
    "Request",
    "OutcomeCounts",
    "ReleaseMetrics",
    "SystemMetrics",
]
