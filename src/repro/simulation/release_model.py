"""Stochastic behaviour of a deployed release.

A :class:`ReleaseBehaviour` bundles what the paper parameterises per
release: the content outcome process (possibly correlated with a sibling
release) and the latency process.  It is consumed in two ways:

* the fast Monte-Carlo path (Tables 5-6 experiments) samples whole vectors
  of outcomes/latencies at once;
* the discrete-event path (`repro.services.endpoint`) asks for one
  :class:`SimulatedResponse` per incoming request.
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.simulation.correlation import OutcomeDistribution
from repro.simulation.distributions import Distribution
from repro.simulation.outcomes import Outcome


@dataclass(frozen=True)
class SimulatedResponse:
    """One release's reaction to one demand.

    Attributes
    ----------
    outcome:
        Content-level outcome (CR / ER / NER).
    execution_time:
        Seconds between the request reaching the release and its response
        being ready.
    payload:
        The response body the consumer would see.  Correct responses carry
        the demand's reference answer; non-evident failures carry a
        plausible-but-wrong value; evident failures carry a fault marker.
    """

    outcome: Outcome
    execution_time: float
    payload: object = None


class ReleaseBehaviour:
    """Samples per-demand behaviour for a single release in isolation.

    This is the *uncorrelated* building block: the outcome distribution is
    the release's marginal.  Correlated two-release sampling lives in
    :class:`repro.simulation.correlation.ConditionalOutcomeModel`, which
    operates on outcome pairs; the discrete-event substrate wires the
    correlation through the shared demand object instead (the demand
    carries pre-sampled outcomes for every release so that correlation
    survives the asynchronous execution order).
    """

    def __init__(
        self,
        name: str,
        outcome_distribution: OutcomeDistribution,
        latency: Distribution,
    ):
        self.name = name
        self.outcome_distribution = outcome_distribution
        self.latency = latency

    def sample_response(
        self,
        rng: np.random.Generator,
        reference_answer: object = None,
        forced_outcome: Optional[Outcome] = None,
    ) -> SimulatedResponse:
        """Sample one response.

        *forced_outcome* lets the caller impose a pre-sampled (e.g.
        correlated) outcome while still drawing latency from this release's
        latency law.
        """
        outcome = (
            forced_outcome
            if forced_outcome is not None
            else self.outcome_distribution.sample(rng)
        )
        execution_time = self.latency.sample(rng)
        payload = self._payload_for(outcome, reference_answer)
        return SimulatedResponse(outcome, execution_time, payload)

    def payload_for(self, outcome: Outcome, reference_answer: object) -> object:
        """The response body carried by a response with *outcome*.

        Public so substrates that draw latency elsewhere (the scripted
        asyncio endpoints) produce payloads bit-compatible with
        :meth:`sample_response`.
        """
        return self._payload_for(outcome, reference_answer)

    def _payload_for(self, outcome: Outcome, reference_answer: object) -> object:
        if outcome is Outcome.CORRECT:
            return reference_answer
        if outcome is Outcome.NON_EVIDENT_FAILURE:
            # A plausible but wrong value: perturb the reference answer in a
            # type-preserving way so naive validity checks pass.
            if isinstance(reference_answer, (int, float)):
                return reference_answer + 1
            if isinstance(reference_answer, str):
                return reference_answer + "*"
            return ("corrupted", reference_answer)
        return ("fault", self.name)

    def __repr__(self) -> str:
        return (
            f"ReleaseBehaviour(name={self.name!r}, "
            f"outcomes={self.outcome_distribution!r}, latency={self.latency!r})"
        )
