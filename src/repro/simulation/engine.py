"""Heap-based discrete-event simulation kernel.

This replaces the paper's MATLAB 6.0 event-driven model (Section 5.2.1)
with an equivalent pure-Python kernel.  The kernel is deliberately minimal:
events are ``(time, sequence, event)`` triples dispatched in time order,
with stable FIFO ordering for simultaneous events and O(log n) cancellation
via tombstones.

The managed-upgrade middleware builds on three primitives:

* :meth:`Simulator.schedule` — a release's response arriving after its
  sampled execution time;
* :meth:`Simulator.cancel` — a pending timeout withdrawn because all
  responses already arrived;
* :meth:`Simulator.run` — drive the simulation to quiescence or a horizon.

Kernel fast paths (the experiment grids dispatch ~6 events per request,
so this module caps throughput for every Table-5/6 cell):

* heap entries are plain ``(time, sequence, event)`` tuples, compared in C
  (the sequence number is unique, so the :class:`Event` itself is never
  compared);
* :attr:`Simulator.pending_count` is O(1) via a live-event counter
  maintained on schedule / cancel / dispatch;
* cancelled entries are tombstoned lazily, and the heap is compacted once
  tombstones exceed half of its entries, so mass cancellation (every
  demand cancels its timeout) cannot grow the heap without bound.

Observability: pass a :class:`repro.obs.trace.Tracer` to the constructor
and the kernel emits a ``schedule`` / ``dispatch`` / ``cancel`` /
``compact`` event stream in simulated time (see :mod:`repro.obs`).  With
no tracer attached every instrumentation site is a single ``is None``
check, so the disabled path stays at full throughput.
"""

import heapq
from typing import Callable, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.obs.trace import Tracer
from repro.simulation.clock import SimulationClock

#: Type of an event callback.  Callbacks receive no arguments; closures are
#: used to carry context (explicit and picklable enough for our needs).
EventCallback = Callable[[], None]


class Event:
    """Handle to a scheduled event; supports cancellation and inspection."""

    __slots__ = ("time", "callback", "label", "_cancelled", "_dispatched",
                 "_simulator")

    def __init__(
        self,
        time: float,
        callback: EventCallback,
        label: str = "",
        simulator: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.callback = callback
        self.label = label
        self._cancelled = False
        self._dispatched = False
        self._simulator = simulator

    @property
    def cancelled(self) -> bool:
        """True if the event was cancelled before dispatch."""
        return self._cancelled

    @property
    def dispatched(self) -> bool:
        """True once the kernel has run the event's callback."""
        return self._dispatched

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent; no-op if run)."""
        if self._cancelled or self._dispatched:
            return
        self._cancelled = True
        if self._simulator is not None:
            self._simulator._note_cancelled(self)

    def __repr__(self) -> str:
        state = (
            "dispatched"
            if self._dispatched
            else "cancelled"
            if self._cancelled
            else "pending"
        )
        return f"Event(t={self.time!r}, label={self.label!r}, {state})"


class Simulator:
    """Discrete-event simulator with a single global clock.

    Example
    -------
    >>> sim = Simulator()
    >>> arrived = []
    >>> _ = sim.schedule(1.5, lambda: arrived.append(sim.now))
    >>> sim.run()
    1
    >>> arrived
    [1.5]
    """

    #: Compaction never triggers below this heap size; rebuilding a
    #: handful of entries costs more than the tombstones it reclaims.
    COMPACT_MIN_HEAP = 64

    def __init__(
        self, start_time: float = 0.0, tracer: Optional[Tracer] = None
    ):
        self._clock = SimulationClock(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._next_sequence = 0
        self._dispatched_count = 0
        self._live_count = 0
        self._tombstones = 0
        self._running = False
        self._compactions = 0
        self._peak_heap = 0
        # The disabled path must cost nothing beyond one None check per
        # instrumentation site, so a disabled tracer is normalised away.
        self._trace: Optional[Tracer] = (
            tracer if tracer is not None and tracer.enabled else None
        )

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._clock.now

    @property
    def clock(self) -> SimulationClock:
        """The underlying clock object (shared with observers)."""
        return self._clock

    @property
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-dispatched, not-cancelled events.

        O(1): maintained as a live counter on schedule / cancel / dispatch
        rather than scanning the heap.
        """
        return self._live_count

    @property
    def dispatched_count(self) -> int:
        """Total number of events whose callbacks have run."""
        return self._dispatched_count

    @property
    def heap_size(self) -> int:
        """Entries currently in the heap, including cancelled tombstones."""
        return len(self._heap)

    @property
    def peak_heap_size(self) -> int:
        """Largest heap (live + tombstones) seen so far."""
        return max(self._peak_heap, len(self._heap))

    @property
    def compactions(self) -> int:
        """Number of tombstone compactions performed."""
        return self._compactions

    @property
    def tracer(self) -> Optional[Tracer]:
        """The attached trace sink, if tracing is enabled.

        Components driven by this simulator (the middleware's demand
        state machines) read it to emit their own span events into the
        same trace.
        """
        return self._trace

    def schedule(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Schedule *callback* to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        return self.schedule_at(self._clock.now + delay, callback, label)

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Schedule *callback* at absolute simulated *time*."""
        if time < self._clock.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self._clock.now!r}"
            )
        event = Event(time, callback, label, simulator=self)
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        heapq.heappush(self._heap, (time, sequence, event))
        self._live_count += 1
        if len(self._heap) > self._peak_heap:
            self._peak_heap = len(self._heap)
        if self._trace is not None:
            self._trace.emit(
                "schedule", t=self._clock.now, at=time, eid=sequence,
                label=label,
            )
        return event

    def cancel(self, event: Event) -> None:
        """Cancel *event*; lazily removed from the heap on pop."""
        event.cancel()

    def _note_cancelled(self, event: Event) -> None:
        """Bookkeeping for a pending event that was just cancelled.

        Called exactly once per event by :meth:`Event.cancel` (which
        guards against double-cancel and cancel-after-dispatch, so the
        counters cannot be double-decremented).
        """
        self._live_count -= 1
        self._tombstones += 1
        if self._trace is not None:
            self._trace.emit(
                "cancel", t=self._clock.now, at=event.time,
                label=event.label,
            )
        if (
            self._tombstones * 2 > len(self._heap)
            and len(self._heap) >= self.COMPACT_MIN_HEAP
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled tombstones and re-heapify the live entries.

        ``(time, sequence)`` keys are unique, so heapify reproduces the
        exact dispatch order the lazy tombstone path would have yielded.
        """
        before = len(self._heap)
        self._heap = [
            entry for entry in self._heap if not entry[2]._cancelled
        ]
        heapq.heapify(self._heap)
        self._tombstones = 0
        self._compactions += 1
        if self._trace is not None:
            self._trace.emit(
                "compact", t=self._clock.now, before=before,
                after=len(self._heap),
            )

    def step(self) -> Optional[Event]:
        """Dispatch the single next event; return it, or None if drained."""
        heap = self._heap
        while heap:
            time, sequence, event = heapq.heappop(heap)
            if event._cancelled:
                self._tombstones -= 1
                continue
            self._clock.advance_to(time)
            event._dispatched = True
            self._dispatched_count += 1
            self._live_count -= 1
            if self._trace is not None:
                self._trace.emit(
                    "dispatch", t=time, eid=sequence, label=event.label
                )
            event.callback()
            return event
        return None

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Dispatch events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would be strictly after this time; the
            clock is then advanced to *until* (events at exactly *until* are
            dispatched).  ``None`` runs to quiescence.
        max_events:
            Safety valve against runaway feedback loops.

        Returns the number of events dispatched by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        dispatched = 0
        try:
            if until is None:
                # Run-to-quiescence fast path: step() already skips
                # tombstones, so no per-iteration peek is needed.
                while self._heap:
                    if max_events is not None and dispatched >= max_events:
                        break
                    if self.step() is None:
                        break
                    dispatched += 1
            else:
                while self._heap:
                    if max_events is not None and dispatched >= max_events:
                        break
                    head = self._peek()
                    if head is None or head.time > until:
                        break
                    if self.step() is not None:
                        dispatched += 1
                if until > self._clock.now:
                    self._clock.advance_to(until)
        finally:
            self._running = False
        return dispatched

    def _peek(self) -> Optional[Event]:
        """Return the next live event without dispatching it."""
        heap = self._heap
        while heap:
            event = heap[0][2]
            if event._cancelled:
                heapq.heappop(heap)
                self._tombstones -= 1
                continue
            return event
        return None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now!r}, pending={self.pending_count}, "
            f"dispatched={self._dispatched_count})"
        )
