"""Heap-based discrete-event simulation kernel.

This replaces the paper's MATLAB 6.0 event-driven model (Section 5.2.1)
with an equivalent pure-Python kernel.  The kernel is deliberately minimal:
events are ``(time, sequence, callback)`` triples dispatched in time order,
with stable FIFO ordering for simultaneous events and O(log n) cancellation
via tombstones.

The managed-upgrade middleware builds on three primitives:

* :meth:`Simulator.schedule` — a release's response arriving after its
  sampled execution time;
* :meth:`Simulator.cancel` — a pending timeout withdrawn because all
  responses already arrived;
* :meth:`Simulator.run` — drive the simulation to quiescence or a horizon.
"""

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.errors import SimulationError
from repro.simulation.clock import SimulationClock

#: Type of an event callback.  Callbacks receive no arguments; closures are
#: used to carry context (explicit and picklable enough for our needs).
EventCallback = Callable[[], None]


@dataclass(order=True)
class _HeapEntry:
    time: float
    sequence: int
    event: "Event" = field(compare=False)


class Event:
    """Handle to a scheduled event; supports cancellation and inspection."""

    __slots__ = ("time", "callback", "label", "_cancelled", "_dispatched")

    def __init__(self, time: float, callback: EventCallback, label: str = ""):
        self.time = time
        self.callback = callback
        self.label = label
        self._cancelled = False
        self._dispatched = False

    @property
    def cancelled(self) -> bool:
        """True if the event was cancelled before dispatch."""
        return self._cancelled

    @property
    def dispatched(self) -> bool:
        """True once the kernel has run the event's callback."""
        return self._dispatched

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent; no-op if run)."""
        self._cancelled = True

    def __repr__(self) -> str:
        state = (
            "dispatched"
            if self._dispatched
            else "cancelled"
            if self._cancelled
            else "pending"
        )
        return f"Event(t={self.time!r}, label={self.label!r}, {state})"


class Simulator:
    """Discrete-event simulator with a single global clock.

    Example
    -------
    >>> sim = Simulator()
    >>> arrived = []
    >>> _ = sim.schedule(1.5, lambda: arrived.append(sim.now))
    >>> sim.run()
    1
    >>> arrived
    [1.5]
    """

    def __init__(self, start_time: float = 0.0):
        self._clock = SimulationClock(start_time)
        self._heap: List[_HeapEntry] = []
        self._sequence = itertools.count()
        self._dispatched_count = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._clock.now

    @property
    def clock(self) -> SimulationClock:
        """The underlying clock object (shared with observers)."""
        return self._clock

    @property
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-dispatched, not-cancelled events."""
        return sum(1 for e in self._heap if not e.event.cancelled)

    @property
    def dispatched_count(self) -> int:
        """Total number of events whose callbacks have run."""
        return self._dispatched_count

    def schedule(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Schedule *callback* to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        return self.schedule_at(self._clock.now + delay, callback, label)

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Schedule *callback* at absolute simulated *time*."""
        if time < self._clock.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self._clock.now!r}"
            )
        event = Event(time, callback, label)
        heapq.heappush(self._heap, _HeapEntry(time, next(self._sequence), event))
        return event

    def cancel(self, event: Event) -> None:
        """Cancel *event*; lazily removed from the heap on pop."""
        event.cancel()

    def step(self) -> Optional[Event]:
        """Dispatch the single next event; return it, or None if drained."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            event = entry.event
            if event.cancelled:
                continue
            self._clock.advance_to(entry.time)
            event._dispatched = True
            self._dispatched_count += 1
            event.callback()
            return event
        return None

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Dispatch events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would be strictly after this time; the
            clock is then advanced to *until* (events at exactly *until* are
            dispatched).  ``None`` runs to quiescence.
        max_events:
            Safety valve against runaway feedback loops.

        Returns the number of events dispatched by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while self._heap:
                if max_events is not None and dispatched >= max_events:
                    break
                head = self._peek()
                if head is None:
                    break
                if until is not None and head.time > until:
                    break
                if self.step() is not None:
                    dispatched += 1
            if until is not None and until > self._clock.now:
                self._clock.advance_to(until)
        finally:
            self._running = False
        return dispatched

    def _peek(self) -> Optional[Event]:
        """Return the next live event without dispatching it."""
        while self._heap:
            entry = self._heap[0]
            if entry.event.cancelled:
                heapq.heappop(self._heap)
                continue
            return entry.event
        return None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now!r}, pending={self.pending_count}, "
            f"dispatched={self._dispatched_count})"
        )
