"""Request / demand stream generators.

The paper's §5.2 experiments process 10,000 requests through the upgrade
middleware; its §5.1 experiments draw 50,000 demands from "a 'realistic'
operational environment (profile)".  Two workload shapes cover both:

* :class:`ClosedLoopWorkload` — one outstanding request at a time (the
  next demand is issued when the previous adjudicated response returns);
  this is what the paper's tables measure, since per-request metrics are
  independent of arrival spacing.
* :class:`PoissonWorkload` — open-loop Poisson arrivals, used by the
  examples and the responsiveness ablation to show middleware behaviour
  under overlapping requests.
"""

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from repro.common.seeding import DEFAULT_COMPONENT_SEED, spawn_generator
from repro.common.validation import check_positive
from repro.simulation.engine import Simulator


@dataclass(frozen=True)
class Request:
    """One consumer demand on the (composite) Web Service.

    Attributes
    ----------
    request_id:
        Monotonically increasing identifier.
    operation:
        Name of the WSDL operation being invoked.
    arguments:
        Operation arguments (opaque to the middleware).
    reference_answer:
        The ground-truth answer used by simulation oracles to classify
        responses; real consumers never see it.
    issue_time:
        Simulated time at which the consumer issued the demand (filled by
        the workload driver; None in outcome-level Monte-Carlo paths).
    """

    request_id: int
    operation: str = "operation1"
    arguments: Tuple[object, ...] = ()
    reference_answer: object = None
    issue_time: Optional[float] = None


class ClosedLoopWorkload:
    """Generate demands back-to-back, one outstanding request at a time."""

    def __init__(
        self,
        total_requests: int,
        operation: str = "operation1",
        rng: Optional[np.random.Generator] = None,
    ):
        if total_requests <= 0:
            raise ValueError(f"total_requests must be > 0: {total_requests!r}")
        self.total_requests = int(total_requests)
        self.operation = operation
        self._rng = rng
        self._counter = itertools.count()

    def requests(self) -> Iterator[Request]:
        """Yield the demand stream; reference answers are the request ids."""
        for _ in range(self.total_requests):
            request_id = next(self._counter)
            yield Request(
                request_id=request_id,
                operation=self.operation,
                arguments=(request_id,),
                reference_answer=request_id,
            )

    def __len__(self) -> int:
        return self.total_requests


class StreamingArrivalSource:
    """Feed fixed-spacing arrivals into a simulator one event at a time.

    The experiment grids used to pre-schedule all N request closures
    before running, which costs O(N) memory and keeps the event heap N
    entries deep for the whole run (every push/pop then pays an O(log N)
    factor against a heap that only ever needs ~6 live events).  This
    source schedules request ``i + 1`` from request ``i``'s arrival
    callback instead, so the heap stays O(demand concurrency) deep and
    closures are created lazily.

    Dispatch order is identical to pre-scheduling: arrival *i + 1* is
    strictly later in simulated time than every event arrival *i* spawns
    whenever ``spacing`` exceeds the demand's lifetime (TimeOut + dT, as
    in the Table-5/6 grids).

    Example
    -------
    >>> from repro.simulation.engine import Simulator
    >>> sim = Simulator()
    >>> seen = []
    >>> StreamingArrivalSource(sim, 3, 2.0, seen.append).start()
    >>> _ = sim.run()
    >>> seen
    [0, 1, 2]
    """

    def __init__(
        self,
        simulator: Simulator,
        count: int,
        spacing: float,
        submit: Callable[[int], None],
        start_at: float = 0.0,
    ):
        if count < 0:
            raise ValueError(f"count must be >= 0: {count!r}")
        self._simulator = simulator
        self.count = int(count)
        self.spacing = check_positive(spacing, "spacing")
        self._submit = submit
        self.start_at = float(start_at)
        self.issued = 0

    def start(self) -> None:
        """Schedule the first arrival (no-op for an empty stream)."""
        if self.count:
            self._schedule(0)

    def _schedule(self, index: int) -> None:
        self._simulator.schedule_at(
            self.start_at + index * self.spacing,
            lambda: self._fire(index),
            label=f"arrival:{index}",
        )

    def _fire(self, index: int) -> None:
        # Chain the next arrival before submitting: the submit callback
        # may run the demand to completion synchronously, and scheduling
        # first keeps the heap footprint minimal either way.
        if index + 1 < self.count:
            self._schedule(index + 1)
        self.issued += 1
        self._submit(index)


class PoissonWorkload:
    """Open-loop Poisson arrivals with a given mean rate (requests/sec)."""

    def __init__(
        self,
        rate: float,
        total_requests: int,
        operation: str = "operation1",
        rng: Optional[np.random.Generator] = None,
    ):
        self.rate = check_positive(rate, "rate")
        if total_requests <= 0:
            raise ValueError(f"total_requests must be > 0: {total_requests!r}")
        self.total_requests = int(total_requests)
        self.operation = operation
        # Arrival times shape every downstream measurement, so the
        # no-generator fallback must be deterministic too (REPRO101).
        self._rng = (
            rng
            if rng is not None
            else spawn_generator(DEFAULT_COMPONENT_SEED)
        )

    def arrival_times(self) -> np.ndarray:
        """Sample the absolute arrival times of the whole stream."""
        gaps = self._rng.exponential(1.0 / self.rate, size=self.total_requests)
        return np.cumsum(gaps)

    def requests(self) -> Iterator[Request]:
        """Yield timestamped demands."""
        for request_id, issue_time in enumerate(self.arrival_times()):
            yield Request(
                request_id=request_id,
                operation=self.operation,
                arguments=(request_id,),
                reference_answer=request_id,
                issue_time=float(issue_time),
            )

    def __len__(self) -> int:
        return self.total_requests
