"""Request / demand stream generators.

The paper's §5.2 experiments process 10,000 requests through the upgrade
middleware; its §5.1 experiments draw 50,000 demands from "a 'realistic'
operational environment (profile)".  Two workload shapes cover both:

* :class:`ClosedLoopWorkload` — one outstanding request at a time (the
  next demand is issued when the previous adjudicated response returns);
  this is what the paper's tables measure, since per-request metrics are
  independent of arrival spacing.
* :class:`PoissonWorkload` — open-loop Poisson arrivals, used by the
  examples and the responsiveness ablation to show middleware behaviour
  under overlapping requests.
"""

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.common.validation import check_positive


@dataclass(frozen=True)
class Request:
    """One consumer demand on the (composite) Web Service.

    Attributes
    ----------
    request_id:
        Monotonically increasing identifier.
    operation:
        Name of the WSDL operation being invoked.
    arguments:
        Operation arguments (opaque to the middleware).
    reference_answer:
        The ground-truth answer used by simulation oracles to classify
        responses; real consumers never see it.
    issue_time:
        Simulated time at which the consumer issued the demand (filled by
        the workload driver; None in outcome-level Monte-Carlo paths).
    """

    request_id: int
    operation: str = "operation1"
    arguments: tuple = ()
    reference_answer: object = None
    issue_time: Optional[float] = None


class ClosedLoopWorkload:
    """Generate demands back-to-back, one outstanding request at a time."""

    def __init__(
        self,
        total_requests: int,
        operation: str = "operation1",
        rng: Optional[np.random.Generator] = None,
    ):
        if total_requests <= 0:
            raise ValueError(f"total_requests must be > 0: {total_requests!r}")
        self.total_requests = int(total_requests)
        self.operation = operation
        self._rng = rng
        self._counter = itertools.count()

    def requests(self) -> Iterator[Request]:
        """Yield the demand stream; reference answers are the request ids."""
        for _ in range(self.total_requests):
            request_id = next(self._counter)
            yield Request(
                request_id=request_id,
                operation=self.operation,
                arguments=(request_id,),
                reference_answer=request_id,
            )

    def __len__(self) -> int:
        return self.total_requests


class PoissonWorkload:
    """Open-loop Poisson arrivals with a given mean rate (requests/sec)."""

    def __init__(
        self,
        rate: float,
        total_requests: int,
        operation: str = "operation1",
        rng: Optional[np.random.Generator] = None,
    ):
        self.rate = check_positive(rate, "rate")
        if total_requests <= 0:
            raise ValueError(f"total_requests must be > 0: {total_requests!r}")
        self.total_requests = int(total_requests)
        self.operation = operation
        self._rng = rng if rng is not None else np.random.default_rng()

    def arrival_times(self) -> np.ndarray:
        """Sample the absolute arrival times of the whole stream."""
        gaps = self._rng.exponential(1.0 / self.rate, size=self.total_requests)
        return np.cumsum(gaps)

    def requests(self) -> Iterator[Request]:
        """Yield timestamped demands."""
        for request_id, issue_time in enumerate(self.arrival_times()):
            yield Request(
                request_id=request_id,
                operation=self.operation,
                arguments=(request_id,),
                reference_answer=request_id,
                issue_time=float(issue_time),
            )

    def __len__(self) -> int:
        return self.total_requests
