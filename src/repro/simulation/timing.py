"""Execution-time model of the paper (eq. 7 and 8, Section 5.2.1).

Equation (7):  ``Ex.Time(Release(i)) = T1 + T2(i)`` where ``T1`` models the
computational difficulty of the demand (shared by both releases) and
``T2(i)`` models per-release differences.  Both are exponential in the
paper's settings (means 0.7 s).

Equation (8):  ``Ex.time(WS) = min(TimeOut, max_i Ex.time(Release(i))) + dT``
where ``dT`` is the middleware's adjudication overhead (0.1 s).
"""

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import check_non_negative, check_positive
from repro.simulation.distributions import Distribution, Exponential


class ExecutionTimeModel:
    """Samples correlated execution times for N releases per eq. (7).

    Parameters
    ----------
    common:
        Distribution of the demand-difficulty component ``T1`` shared by
        all releases on the same demand.
    per_release:
        One distribution ``T2(i)`` per deployed release.
    """

    def __init__(self, common: Distribution, per_release: Sequence[Distribution]):
        if not per_release:
            raise ConfigurationError("need at least one per-release component")
        self._common = common
        self._per_release = tuple(per_release)

    @classmethod
    def paper_defaults(cls, release_count: int = 2) -> "ExecutionTimeModel":
        """The Section 5.2.2 parameters: T1Mean = T2Mean_i = 0.7 s."""
        return cls(
            Exponential(0.7), [Exponential(0.7) for _ in range(release_count)]
        )

    @property
    def release_count(self) -> int:
        return len(self._per_release)

    @property
    def mean_times(self) -> Tuple[float, ...]:
        """Theoretical mean execution time per release."""
        return tuple(
            self._common.mean + t2.mean for t2 in self._per_release
        )

    def sample(self, rng: np.random.Generator) -> Tuple[float, ...]:
        """Sample one execution time per release for a single demand."""
        t1 = self._common.sample(rng)
        return tuple(t1 + t2.sample(rng) for t2 in self._per_release)

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample a ``(size, release_count)`` matrix of execution times."""
        t1 = self._common.sample_many(rng, size)
        columns = [
            t1 + t2.sample_many(rng, size) for t2 in self._per_release
        ]
        return np.column_stack(columns)


@dataclass(frozen=True)
class SystemTimingPolicy:
    """TimeOut and adjudication overhead of the upgrade middleware (eq. 8).

    Attributes
    ----------
    timeout:
        Maximum time the middleware waits for release responses (the
        paper sweeps 1.5 s, 2.0 s and 3.0 s).
    adjudication_delay:
        The constant ``dT`` added for adjudicating responses (0.1 s).
    """

    timeout: float
    adjudication_delay: float = 0.1

    def __post_init__(self) -> None:
        check_positive(self.timeout, "timeout")
        check_non_negative(self.adjudication_delay, "adjudication_delay")

    def system_time(self, release_times: Sequence[float]) -> float:
        """Composite execution time per eq. (8).

        ``min(TimeOut, max_i t_i) + dT`` — the middleware waits for the
        slowest release, but never past the TimeOut.
        """
        if not len(release_times):
            return self.timeout + self.adjudication_delay
        slowest = max(release_times)
        return min(self.timeout, slowest) + self.adjudication_delay

    def collected_mask(self, release_times: Sequence[float]) -> Tuple[bool, ...]:
        """Which releases responded within the TimeOut."""
        return tuple(t <= self.timeout for t in release_times)

    def system_times_many(self, release_times: np.ndarray) -> np.ndarray:
        """Vectorised eq. (8) over a ``(n, releases)`` matrix."""
        slowest = release_times.max(axis=1)
        return np.minimum(self.timeout, slowest) + self.adjudication_delay


#: The TimeOut sweep used by Tables 5 and 6 of the paper.
PAPER_TIMEOUTS: Tuple[float, float, float] = (1.5, 2.0, 3.0)

#: The paper's adjudication overhead dT.
PAPER_ADJUDICATION_DELAY: float = 0.1
