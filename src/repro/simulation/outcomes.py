"""Response outcome taxonomy (paper Sections 2.1 and 5.2.1).

The paper classifies a release's response to one demand as

* **CR** — correct response;
* **ER** — evident failure (exception, denial of service, or detectable by
  a general-purpose mechanism such as a timeout);
* **NER** — non-evident failure (wrong answer that looks valid; detectable
  only through application-level redundancy such as diverse releases).

A fourth observable, *no response within TimeOut* (NRDT in Tables 5-6), is
a property of timing rather than of the response content, so it is modelled
separately by :class:`ResponseKind`.
"""

import enum
from typing import Tuple


class Outcome(enum.Enum):
    """Content-level outcome of one release processing one demand."""

    CORRECT = "CR"
    EVIDENT_FAILURE = "ER"
    NON_EVIDENT_FAILURE = "NER"

    @property
    def is_failure(self) -> bool:
        """True for both evident and non-evident failures."""
        return self is not Outcome.CORRECT

    @property
    def is_valid(self) -> bool:
        """True if the response *looks* acceptable to the middleware.

        The adjudication rules of Section 5.2.1 treat correct and
        non-evidently-incorrect responses alike ("valid"): only evident
        failures can be filtered without diversity.
        """
        return self is not Outcome.EVIDENT_FAILURE

    @classmethod
    def from_code(cls, code: str) -> "Outcome":
        """Parse the paper's CR/ER/NER codes (NER also accepts 'EER')."""
        table = {
            "CR": cls.CORRECT,
            "ER": cls.EVIDENT_FAILURE,
            "EER": cls.EVIDENT_FAILURE,
            "NER": cls.NON_EVIDENT_FAILURE,
        }
        try:
            return table[code.upper()]
        except KeyError:
            raise ValueError(f"unknown outcome code: {code!r}") from None

    def __str__(self) -> str:
        return self.value


#: Canonical outcome ordering used by probability vectors (Table 3 order).
OUTCOME_ORDER: Tuple[Outcome, Outcome, Outcome] = (
    Outcome.CORRECT,
    Outcome.EVIDENT_FAILURE,
    Outcome.NON_EVIDENT_FAILURE,
)


class ResponseKind(enum.Enum):
    """What the middleware observed for one release on one demand."""

    #: A response (of whatever content outcome) arrived within TimeOut.
    COLLECTED = "collected"
    #: The release's execution time exceeded TimeOut (counts towards NRDT).
    TIMED_OUT = "timed-out"
    #: The release is administratively offline (removed by management).
    OFFLINE = "offline"


def joint_code(first: Outcome, second: Outcome) -> str:
    """Two-character failure code used by Table 1 of the paper.

    '1' means the release failed (evidently or not), '0' means it
    succeeded; e.g. both-fail is ``"11"``.
    """
    return ("1" if first.is_failure else "0") + (
        "1" if second.is_failure else "0"
    )
