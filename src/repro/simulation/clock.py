"""Simulation clock.

A tiny value object separated from the engine so that non-event-driven
components (e.g. the monitoring subsystem's observation log) can timestamp
records without holding a reference to the full simulator.
"""

from repro.common.errors import SimulationError


class SimulationClock:
    """Monotonically non-decreasing simulated time in seconds."""

    def __init__(self, start: float = 0.0):
        if start < 0.0:
            raise SimulationError(f"clock cannot start negative: {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to *timestamp*.

        Raises :class:`SimulationError` if *timestamp* is in the past —
        time travel indicates a scheduling bug, never a recoverable state.
        """
        if timestamp < self._now:
            raise SimulationError(
                f"cannot advance clock backwards: {timestamp!r} < {self._now!r}"
            )
        self._now = float(timestamp)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by a non-negative *delta*."""
        if delta < 0.0:
            raise SimulationError(f"negative clock delta: {delta!r}")
        self._now += float(delta)

    def __repr__(self) -> str:
        return f"SimulationClock(now={self._now!r})"
