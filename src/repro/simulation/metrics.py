"""Metrics collectors matching the row format of Tables 5 and 6.

For each release and for the adjudicated system the paper reports, per
10,000 requests:

* **MET** — mean execution time of responses, in seconds;
* **CR / EER / NER** — counts of correct, evidently-erroneous and
  non-evidently-erroneous responses *collected within the TimeOut*;
* **Total** — sum of the three counts;
* **NRDT** — requests for which no response arrived within the TimeOut.

``Total + NRDT == total requests`` always holds (asserted in tests).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.simulation.outcomes import OUTCOME_ORDER, Outcome


@dataclass
class OutcomeCounts:
    """Counts of collected responses by content outcome."""

    correct: int = 0
    evident: int = 0
    non_evident: int = 0

    def record(self, outcome: Outcome) -> None:
        if outcome is Outcome.CORRECT:
            self.correct += 1
        elif outcome is Outcome.EVIDENT_FAILURE:
            self.evident += 1
        elif outcome is Outcome.NON_EVIDENT_FAILURE:
            self.non_evident += 1
        else:  # pragma: no cover - exhaustive over the enum
            raise ValueError(f"unknown outcome: {outcome!r}")

    @property
    def total(self) -> int:
        """Total responses collected (the paper's 'Total' row)."""
        return self.correct + self.evident + self.non_evident

    def as_dict(self) -> Dict[str, int]:
        return {
            "CR": self.correct,
            "EER": self.evident,
            "NER": self.non_evident,
            "Total": self.total,
        }


class ReleaseMetrics:
    """Accumulates one release's (or the system's) row of Table 5/6."""

    def __init__(self, name: str):
        self.name = name
        self.counts = OutcomeCounts()
        self.no_response = 0
        self._time_sum = 0.0
        self._time_count = 0
        self.total_requests = 0

    def record_response(self, outcome: Outcome, execution_time: float) -> None:
        """Record a response collected within the TimeOut."""
        self.total_requests += 1
        self.counts.record(outcome)
        self._time_sum += execution_time
        self._time_count += 1

    def record_no_response(
        self, execution_time: Optional[float] = None
    ) -> None:
        """Record a demand with no response within the TimeOut (NRDT).

        *execution_time* may still be supplied for the system row, where
        eq. (8) pins the system time at ``TimeOut + dT`` even when nothing
        was collected.
        """
        self.total_requests += 1
        self.no_response += 1
        if execution_time is not None:
            self._time_sum += execution_time
            self._time_count += 1

    @classmethod
    def from_arrays(
        cls,
        name: str,
        outcome_codes: np.ndarray,
        recorded_times: np.ndarray,
        no_response: int = 0,
    ) -> "ReleaseMetrics":
        """Build a row from whole-cell arrays (the columnar reducer).

        *outcome_codes* are indices into
        :data:`~repro.simulation.outcomes.OUTCOME_ORDER`, one per
        *collected* response; *recorded_times* are the execution times
        that entered the MET accumulator, **in demand order** — the sum
        is taken with ``np.cumsum(...)[-1]``, whose strict left-to-right
        IEEE accumulation is bit-identical to the scalar
        ``_time_sum += t`` loop of :meth:`record_response` (``np.sum``
        is not: it sums pairwise).  *no_response* demands count toward
        NRDT and ``total_requests`` but — unlike the system row's
        eq. (8) convention — contribute no time, so callers wanting the
        timeout pinned into MET must include it in *recorded_times*.
        """
        codes = np.asarray(outcome_codes)
        if codes.size and (codes.min() < 0 or codes.max() >= len(OUTCOME_ORDER)):
            raise ValueError(
                f"{name}: outcome codes must index OUTCOME_ORDER "
                f"(0..{len(OUTCOME_ORDER) - 1})"
            )
        times = np.asarray(recorded_times, dtype=np.float64)
        metrics = cls(name)
        metrics.counts.correct = int(
            np.count_nonzero(codes == OUTCOME_ORDER.index(Outcome.CORRECT))
        )
        metrics.counts.evident = int(
            np.count_nonzero(
                codes == OUTCOME_ORDER.index(Outcome.EVIDENT_FAILURE)
            )
        )
        metrics.counts.non_evident = int(
            np.count_nonzero(
                codes == OUTCOME_ORDER.index(Outcome.NON_EVIDENT_FAILURE)
            )
        )
        metrics.no_response = int(no_response)
        metrics._time_sum = float(np.cumsum(times)[-1]) if times.size else 0.0
        metrics._time_count = int(times.size)
        metrics.total_requests = int(codes.size) + int(no_response)
        return metrics

    @property
    def mean_execution_time(self) -> float:
        """MET over the responses that had a recorded time."""
        if self._time_count == 0:
            return float("nan")
        return self._time_sum / self._time_count

    @property
    def availability(self) -> float:
        """Fraction of demands that produced a response within TimeOut."""
        if self.total_requests == 0:
            return float("nan")
        return self.counts.total / self.total_requests

    @property
    def reliability(self) -> float:
        """Fraction of demands answered *correctly* within TimeOut."""
        if self.total_requests == 0:
            return float("nan")
        return self.counts.correct / self.total_requests

    def as_row(self) -> Dict[str, object]:
        """This release's column of Table 5/6, as a dict."""
        row: Dict[str, object] = {"MET": self.mean_execution_time}
        row.update(self.counts.as_dict())
        row["NRDT"] = self.no_response
        row["Total requests"] = self.total_requests
        return row

    def __repr__(self) -> str:
        return (
            f"ReleaseMetrics(name={self.name!r}, MET="
            f"{self.mean_execution_time:.4f}, {self.counts.as_dict()!r}, "
            f"NRDT={self.no_response})"
        )


@dataclass
class SystemMetrics:
    """The full measurement set of one simulation run (one table cell).

    Bundles a :class:`ReleaseMetrics` per release plus one for the
    adjudicated system, in deployment order (old release first).
    """

    releases: List[ReleaseMetrics] = field(default_factory=list)
    system: ReleaseMetrics = field(
        default_factory=lambda: ReleaseMetrics("System")
    )

    def release(self, index: int) -> ReleaseMetrics:
        return self.releases[index]

    def all_rows(self) -> Dict[str, Dict[str, object]]:
        """Rows keyed by column name (Rel1, Rel2, ..., System)."""
        rows = {
            f"Rel{i + 1}": metrics.as_row()
            for i, metrics in enumerate(self.releases)
        }
        rows["System"] = self.system.as_row()
        return rows

    def check_consistency(self) -> None:
        """Assert the Table-5 invariant ``Total + NRDT == requests``."""
        for metrics in [*self.releases, self.system]:
            total = metrics.counts.total + metrics.no_response
            if total != metrics.total_requests:
                raise AssertionError(
                    f"{metrics.name}: Total({metrics.counts.total}) + "
                    f"NRDT({metrics.no_response}) != requests"
                    f"({metrics.total_requests})"
                )
