"""Latency / execution-time distributions.

The paper models execution-time components as exponentially distributed
random variables (Section 5.2.1): ``T1 ~ exp(T1Mean)`` common to both
releases plus a per-release ``T2(i) ~ exp(T2Mean_i)``.  Additional
distributions are provided for the calibration ablation and for fault
injection in the WS substrate.

All distributions implement the :class:`Distribution` protocol: a
``sample(rng)`` method drawing one float and a ``mean`` property.
"""

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.common.validation import check_non_negative, check_positive


class Distribution(ABC):
    """A non-negative continuous distribution used for delays and latencies."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value using *rng*."""

    @abstractmethod
    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw *size* values at once (vectorised fast path).

        Contract: bit-identical to :meth:`sample_many_scalar` on a
        generator in the same state — the vectorised block and the scalar
        reference consume the underlying stream identically, which is what
        lets the experiment runtime pre-draw whole request blocks while
        staying reproducible draw-for-draw (see
        :mod:`repro.runtime.sampling`).
        """

    def sample_many_scalar(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Scalar reference implementation of :meth:`sample_many`.

        Draws one value at a time in block order.  For simple laws this is
        ``size`` successive :meth:`sample` calls; compound laws (e.g.
        :class:`WithHangs`) override it to mirror their block's leg order.
        Exists so tests can assert the vectorised fast path is
        bit-identical to sequential scalar sampling.
        """
        return np.array([self.sample(rng) for _ in range(size)])

    @property
    @abstractmethod
    def mean(self) -> float:
        """Theoretical mean of the distribution."""


class Exponential(Distribution):
    """Exponential distribution parameterised by its *mean* (as the paper).

    ``Exponential(0.7)`` is the paper's ``exp(T1Mean)`` with
    ``T1Mean = 0.7 s``.
    """

    def __init__(self, mean: float):
        self._mean = check_positive(mean, "mean")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self._mean, size=size)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean!r})"


class Deterministic(Distribution):
    """A degenerate distribution returning a fixed value.

    Used for the middleware's adjudication overhead ``dT`` (0.1 s in the
    paper) and in tests where stochastic latency is unwanted.
    """

    def __init__(self, value: float):
        self._value = check_non_negative(value, "value")

    def sample(self, rng: np.random.Generator) -> float:
        return self._value

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self._value)

    @property
    def mean(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Deterministic(value={self._value!r})"


class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        self._low = check_non_negative(low, "low")
        self._high = check_non_negative(high, "high")
        if high < low:
            raise ValueError(f"high < low: {high!r} < {low!r}")
        self._low, self._high = float(low), float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self._low, self._high))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self._low, self._high, size=size)

    @property
    def mean(self) -> float:
        return 0.5 * (self._low + self._high)

    def __repr__(self) -> str:
        return f"Uniform(low={self._low!r}, high={self._high!r})"


class LogNormal(Distribution):
    """Log-normal distribution parameterised by its mean and sigma.

    Used by the calibration ablation (`repro.experiments.calibration`),
    which asks which latency law reproduces the paper's MET/NRDT pairs —
    the exponential model stated in §5.2.2 has a heavier tail than the
    reported table entries imply.
    """

    def __init__(self, mean: float, sigma: float):
        self._mean = check_positive(mean, "mean")
        self._sigma = check_positive(sigma, "sigma")
        # Solve for the underlying normal's mu so the log-normal mean is
        # exactly `mean`: E = exp(mu + sigma^2 / 2).
        self._mu = math.log(self._mean) - 0.5 * self._sigma ** 2

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self._sigma))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.lognormal(self._mu, self._sigma, size=size)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def sigma(self) -> float:
        return self._sigma

    def __repr__(self) -> str:
        return f"LogNormal(mean={self._mean!r}, sigma={self._sigma!r})"


class WithHangs(Distribution):
    """A base latency law with a probability of never responding.

    With probability ``p_hang`` the sample is ``+inf`` — the service hangs
    (or the response is lost) and only the caller's timeout notices.  Used
    by the calibration ablation to model the residual per-release NRDT the
    paper reports even at the largest TimeOut.
    """

    def __init__(self, base: Distribution, p_hang: float):
        if not 0.0 <= p_hang < 1.0:
            raise ValueError(f"p_hang must be in [0, 1): {p_hang!r}")
        self._base = base
        self._p_hang = float(p_hang)

    def sample(self, rng: np.random.Generator) -> float:
        if self._p_hang and rng.random() < self._p_hang:
            return math.inf
        return self._base.sample(rng)

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        values = self._base.sample_many(rng, size)
        if self._p_hang:
            hangs = rng.random(size) < self._p_hang
            values = np.where(hangs, np.inf, values)
        return values

    def sample_many_scalar(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        # Mirror sample_many's leg order exactly (base block first, then
        # the hang uniforms) so scalar and vectorised draws are
        # bit-identical; a per-sample interleaving would consume the
        # stream differently.
        values = self._base.sample_many_scalar(rng, size)
        if self._p_hang:
            hangs = np.array(
                [rng.random() for _ in range(size)]
            ) < self._p_hang
            values = np.where(hangs, np.inf, values)
        return values

    @property
    def mean(self) -> float:
        """Mean of the *responding* fraction (the full mean is infinite)."""
        return self._base.mean

    @property
    def p_hang(self) -> float:
        return self._p_hang

    def __repr__(self) -> str:
        return f"WithHangs(base={self._base!r}, p_hang={self._p_hang!r})"


class ShiftedExponential(Distribution):
    """A minimum latency plus an exponential tail.

    Models a service with a floor cost (marshalling, network round trip)
    plus stochastic processing time; another calibration candidate.
    """

    def __init__(self, shift: float, tail_mean: float):
        self._shift = check_non_negative(shift, "shift")
        self._tail_mean = check_positive(tail_mean, "tail_mean")

    def sample(self, rng: np.random.Generator) -> float:
        return self._shift + float(rng.exponential(self._tail_mean))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self._shift + rng.exponential(self._tail_mean, size=size)

    @property
    def mean(self) -> float:
        return self._shift + self._tail_mean

    @property
    def shift(self) -> float:
        return self._shift

    def __repr__(self) -> str:
        return (
            f"ShiftedExponential(shift={self._shift!r}, "
            f"tail_mean={self._tail_mean!r})"
        )
