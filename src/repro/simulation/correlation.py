"""Outcome-correlation models between two releases (paper eq. 9, Table 4).

The paper simulates a degree of correlation between the *types* of
responses returned by the two releases through conditional probabilities

    P(slower response is X | faster response is Y)

with X, Y in {CR, ER, NER}.  Table 4 gives four parameterisations (0.9,
0.8, 0.7 and 0.4 on the diagonal); Table 3 gives the marginal outcome
distributions.  An independence variant (Table 6) samples both releases
from their own marginals.

Three model classes are provided:

* :class:`OutcomeDistribution` — a marginal over CR/ER/NER;
* :class:`ConditionalOutcomeModel` — marginal for release 1, conditional
  matrix for release 2 (Tables 3+4 combined);
* :class:`IndependentOutcomeModel` — independent marginals (Table 6).
"""

from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_distribution
from repro.simulation.outcomes import OUTCOME_ORDER, Outcome


class OutcomeDistribution:
    """A probability distribution over CR / ER / NER outcomes."""

    def __init__(self, p_correct: float, p_evident: float, p_non_evident: float):
        probs = check_distribution(
            (p_correct, p_evident, p_non_evident), "outcome probabilities"
        )
        self._probs: Dict[Outcome, float] = dict(zip(OUTCOME_ORDER, probs))

    @classmethod
    def from_mapping(cls, mapping: Mapping[Outcome, float]) -> "OutcomeDistribution":
        """Build from an {Outcome: probability} mapping."""
        missing = [o for o in OUTCOME_ORDER if o not in mapping]
        if missing:
            raise ValidationError(f"missing outcomes in mapping: {missing}")
        return cls(*(mapping[o] for o in OUTCOME_ORDER))

    def probability(self, outcome: Outcome) -> float:
        """P(outcome) under this distribution."""
        return self._probs[outcome]

    @property
    def p_correct(self) -> float:
        return self._probs[Outcome.CORRECT]

    @property
    def p_evident(self) -> float:
        return self._probs[Outcome.EVIDENT_FAILURE]

    @property
    def p_non_evident(self) -> float:
        return self._probs[Outcome.NON_EVIDENT_FAILURE]

    @property
    def p_failure(self) -> float:
        """Total probability of failure (evident + non-evident)."""
        return self.p_evident + self.p_non_evident

    def as_vector(self) -> np.ndarray:
        """Probabilities in :data:`OUTCOME_ORDER` order."""
        return np.array([self._probs[o] for o in OUTCOME_ORDER])

    def sample(self, rng: np.random.Generator) -> Outcome:
        """Draw one outcome."""
        index = rng.choice(len(OUTCOME_ORDER), p=self.as_vector())
        return OUTCOME_ORDER[int(index)]

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw *size* outcome indices (into :data:`OUTCOME_ORDER`).

        Bit-identical to *size* successive :meth:`sample` calls on a
        generator in the same state (numpy's block ``choice`` consumes one
        uniform per draw, exactly like the scalar call) — the property the
        vectorised experiment runtime relies on.
        """
        return rng.choice(len(OUTCOME_ORDER), size=size, p=self.as_vector())

    def sample_many_scalar(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Scalar reference for :meth:`sample_many` (one draw at a time)."""
        vector = self.as_vector()
        return np.array(
            [
                int(rng.choice(len(OUTCOME_ORDER), p=vector))
                for _ in range(size)
            ]
        )

    def __repr__(self) -> str:
        return (
            f"OutcomeDistribution(CR={self.p_correct!r}, "
            f"ER={self.p_evident!r}, NER={self.p_non_evident!r})"
        )


class ConditionalOutcomeMatrix:
    """Row-stochastic matrix ``P(second outcome | first outcome)``.

    Rows and columns follow :data:`OUTCOME_ORDER`.  The paper's Table 4
    uses symmetric matrices with a dominant diagonal (the correlation
    level) and equal off-diagonal mass.
    """

    def __init__(self, rows: Mapping[Outcome, Sequence[float]]):
        self._rows: Dict[Outcome, OutcomeDistribution] = {}
        for outcome in OUTCOME_ORDER:
            if outcome not in rows:
                raise ValidationError(f"missing conditional row for {outcome}")
            self._rows[outcome] = OutcomeDistribution(*rows[outcome])

    @classmethod
    def symmetric(cls, diagonal: float) -> "ConditionalOutcomeMatrix":
        """Build the paper's symmetric matrix with *diagonal* correlation.

        Off-diagonal entries share the remaining mass equally, exactly as
        in Table 4 (e.g. diagonal 0.9 gives off-diagonals 0.05/0.05).
        """
        if not 0.0 <= diagonal <= 1.0:
            raise ValidationError(f"diagonal must be in [0,1]: {diagonal!r}")
        off = (1.0 - diagonal) / 2.0
        rows = {}
        for i, outcome in enumerate(OUTCOME_ORDER):
            row = [off, off, off]
            row[i] = diagonal
            rows[outcome] = row
        return cls(rows)

    def row(self, given: Outcome) -> OutcomeDistribution:
        """Conditional distribution of the second outcome given *given*."""
        return self._rows[given]

    def as_matrix(self) -> np.ndarray:
        """3x3 numpy matrix in :data:`OUTCOME_ORDER` order."""
        return np.vstack([self._rows[o].as_vector() for o in OUTCOME_ORDER])

    def implied_marginal(
        self, first_marginal: OutcomeDistribution
    ) -> OutcomeDistribution:
        """Marginal of the second release implied by the conditionals.

        The paper specifies Table 3 marginals *and* Table 4 conditionals;
        the conditionals only approximately induce the stated marginals.
        This helper quantifies that gap (see tests and EXPERIMENTS.md).
        """
        marginal = first_marginal.as_vector() @ self.as_matrix()
        return OutcomeDistribution(*marginal)

    def __repr__(self) -> str:
        return f"ConditionalOutcomeMatrix({self.as_matrix().tolist()!r})"


class JointOutcomeModel:
    """Abstract base: samples the joint (release 1, release 2) outcome."""

    def sample_pair(self, rng: np.random.Generator) -> Tuple[Outcome, Outcome]:
        """Draw one (first, second) outcome pair."""
        raise NotImplementedError

    def sample_pairs(
        self, rng: np.random.Generator, size: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised draw of *size* pairs as outcome-index arrays.

        Contract: bit-identical to :meth:`sample_pairs_scalar` on a
        generator in the same state (both consume the stream leg by leg:
        all first-release draws, then all second-release draws).
        """
        raise NotImplementedError

    def sample_pairs_scalar(
        self, rng: np.random.Generator, size: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scalar reference for :meth:`sample_pairs` (one draw at a time)."""
        raise NotImplementedError

    def marginal_first(self) -> OutcomeDistribution:
        """Marginal outcome distribution of release 1."""
        raise NotImplementedError

    def marginal_second(self) -> OutcomeDistribution:
        """Marginal outcome distribution of release 2."""
        raise NotImplementedError

    def sample_tuple(
        self, rng: np.random.Generator, count: int
    ) -> Tuple[Outcome, ...]:
        """Draw one outcome per release for *count* deployed releases.

        Pairwise models only support ``count == 2``;
        :class:`ChainedOutcomeModel` supports any count.
        """
        if count != 2:
            raise ValidationError(
                f"{type(self).__name__} models exactly 2 releases, "
                f"got {count}"
            )
        return self.sample_pair(rng)


class ConditionalOutcomeModel(JointOutcomeModel):
    """Correlated outcomes: release 1 marginal + conditional matrix.

    This reproduces the paper's Table 5 regime: the first release's outcome
    is drawn from its Table 3 marginal; the second release's outcome is
    drawn from the Table 4 row selected by the first outcome.
    """

    def __init__(
        self,
        first_marginal: OutcomeDistribution,
        conditional: ConditionalOutcomeMatrix,
    ):
        self._first = first_marginal
        self._conditional = conditional

    @property
    def conditional(self) -> ConditionalOutcomeMatrix:
        return self._conditional

    def sample_pair(self, rng: np.random.Generator) -> Tuple[Outcome, Outcome]:
        first = self._first.sample(rng)
        second = self._conditional.row(first).sample(rng)
        return first, second

    def sample_pairs(
        self, rng: np.random.Generator, size: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        first_idx = self._first.sample_many(rng, size)
        matrix = self._conditional.as_matrix()
        # Inverse-CDF sampling of the conditional rows, vectorised.
        cdf = np.cumsum(matrix, axis=1)
        u = rng.random(size)
        row_cdfs = cdf[first_idx]
        second_idx = (u[:, None] > row_cdfs).sum(axis=1)
        second_idx = np.minimum(second_idx, len(OUTCOME_ORDER) - 1)
        return first_idx, second_idx

    def sample_pairs_scalar(
        self, rng: np.random.Generator, size: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        first_idx = self._first.sample_many_scalar(rng, size)
        cdf = np.cumsum(self._conditional.as_matrix(), axis=1)
        second = []
        for i in range(size):
            u = rng.random()
            row = cdf[first_idx[i]]
            second.append(min(int((u > row).sum()), len(OUTCOME_ORDER) - 1))
        return first_idx, np.array(second)

    def marginal_first(self) -> OutcomeDistribution:
        return self._first

    def marginal_second(self) -> OutcomeDistribution:
        return self._conditional.implied_marginal(self._first)


class ChainedOutcomeModel(JointOutcomeModel):
    """Markov-chained outcomes for N releases (the §4.1 general case).

    The paper's architecture runs "several releases" though its
    evaluation uses two.  This model extends the Table-3/4 construction
    to N releases: release 1's outcome follows the base marginal, and
    each subsequent release's outcome follows the conditional row
    selected by its predecessor — the natural generalisation when each
    new release is derived from the previous one (so its failures
    correlate most strongly with its immediate ancestor's).
    """

    def __init__(
        self,
        first_marginal: OutcomeDistribution,
        conditional: ConditionalOutcomeMatrix,
    ):
        self._first = first_marginal
        self._conditional = conditional

    @property
    def conditional(self) -> ConditionalOutcomeMatrix:
        return self._conditional

    def sample_tuple(
        self, rng: np.random.Generator, count: int
    ) -> Tuple[Outcome, ...]:
        if count < 1:
            raise ValidationError(f"count must be >= 1: {count!r}")
        outcomes = [self._first.sample(rng)]
        for _ in range(count - 1):
            outcomes.append(self._conditional.row(outcomes[-1]).sample(rng))
        return tuple(outcomes)

    def sample_pair(self, rng: np.random.Generator) -> Tuple[Outcome, Outcome]:
        first, second = self.sample_tuple(rng, 2)
        return first, second

    def sample_pairs(
        self, rng: np.random.Generator, size: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        pairwise = ConditionalOutcomeModel(self._first, self._conditional)
        return pairwise.sample_pairs(rng, size)

    def sample_pairs_scalar(
        self, rng: np.random.Generator, size: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        pairwise = ConditionalOutcomeModel(self._first, self._conditional)
        return pairwise.sample_pairs_scalar(rng, size)

    def sample_chain(
        self, rng: np.random.Generator, size: int, count: int
    ) -> np.ndarray:
        """Vectorised draw of *size* outcome chains of length *count*.

        Returns a ``(size, count)`` index array into :data:`OUTCOME_ORDER`.
        The stream is consumed leg by leg (release 1's block, then one
        uniform block per subsequent release), bit-identical to
        :meth:`sample_chain_scalar`.
        """
        if count < 1:
            raise ValidationError(f"count must be >= 1: {count!r}")
        chain = np.empty((size, count), dtype=np.intp)
        chain[:, 0] = self._first.sample_many(rng, size)
        cdf = np.cumsum(self._conditional.as_matrix(), axis=1)
        for level in range(1, count):
            u = rng.random(size)
            row_cdfs = cdf[chain[:, level - 1]]
            nxt = (u[:, None] > row_cdfs).sum(axis=1)
            chain[:, level] = np.minimum(nxt, len(OUTCOME_ORDER) - 1)
        return chain

    def sample_chain_scalar(
        self, rng: np.random.Generator, size: int, count: int
    ) -> np.ndarray:
        """Scalar reference for :meth:`sample_chain` (same leg order)."""
        if count < 1:
            raise ValidationError(f"count must be >= 1: {count!r}")
        chain = np.empty((size, count), dtype=np.intp)
        chain[:, 0] = self._first.sample_many_scalar(rng, size)
        cdf = np.cumsum(self._conditional.as_matrix(), axis=1)
        for level in range(1, count):
            for i in range(size):
                u = rng.random()
                row = cdf[chain[i, level - 1]]
                chain[i, level] = min(
                    int((u > row).sum()), len(OUTCOME_ORDER) - 1
                )
        return chain

    def marginal_first(self) -> OutcomeDistribution:
        return self._first

    def marginal_second(self) -> OutcomeDistribution:
        return self._conditional.implied_marginal(self._first)

    def marginal_nth(self, index: int) -> OutcomeDistribution:
        """Marginal of release *index* (0-based) along the chain."""
        if index < 0:
            raise ValidationError(f"index must be >= 0: {index!r}")
        marginal = self._first
        for _ in range(index):
            marginal = self._conditional.implied_marginal(marginal)
        return marginal


class IndependentOutcomeModel(JointOutcomeModel):
    """Independent outcomes (the paper's Table 6 regime)."""

    def __init__(
        self,
        first_marginal: OutcomeDistribution,
        second_marginal: OutcomeDistribution,
    ):
        self._first = first_marginal
        self._second = second_marginal

    def sample_pair(self, rng: np.random.Generator) -> Tuple[Outcome, Outcome]:
        return self._first.sample(rng), self._second.sample(rng)

    def sample_pairs(
        self, rng: np.random.Generator, size: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        return (
            self._first.sample_many(rng, size),
            self._second.sample_many(rng, size),
        )

    def sample_pairs_scalar(
        self, rng: np.random.Generator, size: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        return (
            self._first.sample_many_scalar(rng, size),
            self._second.sample_many_scalar(rng, size),
        )

    def marginal_first(self) -> OutcomeDistribution:
        return self._first

    def marginal_second(self) -> OutcomeDistribution:
        return self._second
