"""Versioned event envelopes and the upcaster chain (``repro.obs``).

Every event that reaches durable storage — a JSONL trace file written
by :class:`~repro.obs.trace.JsonlTracer`, a segment of an
:class:`~repro.store.log.EventStream` — is wrapped in an *envelope*: the
event's own fields plus a schema-version marker (``"v"``).  Readers
never hand envelopes to consumers directly; they decode each line to
the *logical event* (the version-free dict the PR 3 trace layer always
exposed) by running it through the upcaster chain:

* **v1** (PR 3) — bare JSON objects, no ``"v"`` key.  The logical
  layout of every kind (``schedule`` / ``dispatch`` / ``demand`` /
  ``checkpoint`` / ...) is unchanged since, so the v1 upcast certifies
  the payload and passes it through untouched — a v1 trace reads back
  *losslessly*, byte-for-byte equal in logical form to what
  :mod:`repro.obs.diff` compared before the store existed.
* **v2** (current) — the same logical payload plus ``"v": 2``.

Adding a schema version means appending one entry to :data:`UPCASTERS`
(a pure function ``event -> event`` lifting version *n* payloads to
version *n + 1*) and bumping :data:`SCHEMA_VERSION`; old segments and
traces then read forward through the chain without rewriting any file
— the event log stays append-only across schema changes.

Serialisation is canonical (sorted keys, compact separators), so two
runs emitting the same logical events produce byte-identical envelope
lines — the property every determinism diff and merged-trace check in
this repository rests on.
"""

import json
from typing import Any, Callable, Dict, Mapping, Tuple

#: Current envelope schema version.  Bump together with a new entry in
#: :data:`UPCASTERS` whenever the logical event layout changes.
SCHEMA_VERSION = 2

#: The envelope field carrying the schema version.  Absent on v1 lines
#: (PR 3 traces predate the marker), mandatory from v2 on.  No logical
#: event field may use this name.
VERSION_FIELD = "v"


def _upcast_v1_to_v2(event: Dict[str, Any]) -> Dict[str, Any]:
    """v1 -> v2: the logical payload is unchanged.

    v2 introduced the envelope marker only; every v1 kind kept its
    field layout.  The upcast therefore passes the payload through —
    which is exactly what makes PR 3 traces read back losslessly.
    """
    return event


#: Upcaster chain: ``UPCASTERS[n]`` lifts a version-*n* logical payload
#: to version *n + 1*.  Decoding a version-*k* line applies
#: ``UPCASTERS[k] .. UPCASTERS[SCHEMA_VERSION - 1]`` in order.
UPCASTERS: Dict[int, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    1: _upcast_v1_to_v2,
}


def encode_event(event: Mapping[str, Any]) -> str:
    """Wrap a logical event in a current-version envelope line.

    Canonical JSON (sorted keys, compact separators), no trailing
    newline.  Rejects events that would collide with the envelope's
    version field.
    """
    if VERSION_FIELD in event:
        raise ValueError(
            f"logical events must not carry the envelope version field "
            f"{VERSION_FIELD!r}: {dict(event)!r}"
        )
    envelope = dict(event)
    envelope[VERSION_FIELD] = SCHEMA_VERSION
    return json.dumps(envelope, sort_keys=True, separators=(",", ":"))


def decode_event(obj: Dict[str, Any]) -> Tuple[Dict[str, Any], int]:
    """Unwrap one parsed envelope object to ``(logical event, version)``.

    The returned version is the *stored* one (before upcasting); the
    caller can count ``version < SCHEMA_VERSION`` as an applied upcast.
    Unknown future versions are an error — downcasting is not a thing
    an append-only log does.
    """
    version = obj.pop(VERSION_FIELD, 1)
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"bad envelope version marker: {version!r}")
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"event has schema version {version}, newer than this "
            f"reader's {SCHEMA_VERSION}; upgrade repro to read it"
        )
    event = obj
    for step in range(version, SCHEMA_VERSION):
        try:
            upcaster = UPCASTERS[step]
        except KeyError:
            raise ValueError(
                f"no upcaster registered for schema version {step}"
            ) from None
        event = upcaster(event)
    return event, version


def decode_line(line: str) -> Tuple[Dict[str, Any], int]:
    """Parse one envelope line and upcast it to the current schema."""
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError("trace events must be objects")
    return decode_event(obj)
