"""Counter / gauge / histogram registry (``repro.obs``).

A :class:`MetricsRegistry` aggregates operational measurements from the
runtime — result-cache hits and misses, process-pool cell wall times and
queue waits, kernel heap statistics — into one deterministic, JSON-ready
snapshot.  It is pull-based and dependency-free: instrumented components
hold ``Optional[MetricsRegistry]`` and skip the update entirely when no
registry is attached, so the disabled path costs a single ``is None``
check.

Instruments:

* :class:`Counter` — monotonically increasing count (``cache.hit``);
* :class:`Gauge` — last-set value (``pool.utilization``);
* :class:`Histogram` — streaming summary (count / sum / min / max /
  mean) of an observed quantity (``cell.wall_seconds``).  No binning:
  the summary is exact and its serialisation deterministic.

Histogram sums use :func:`math.fsum` over retained observations so the
reported sum does not depend on observation order beyond the values
themselves.
"""

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Union


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add {amount!r}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value; ``set`` overwrites."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Streaming summary of an observed quantity.

    Observations are retained so the sum can be reduced with
    :func:`math.fsum` (order-independent for a given multiset of
    values); the experiment grids observe at most a few thousand values
    per histogram, so retention is cheap.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return math.fsum(self._values)

    @property
    def min(self) -> float:
        return min(self._values) if self._values else float("nan")

    @property
    def max(self) -> float:
        return max(self._values) if self._values else float("nan")

    @property
    def mean(self) -> float:
        if not self._values:
            return float("nan")
        return math.fsum(self._values) / len(self._values)

    def summary(self) -> Dict[str, float]:
        """The JSON-ready reduction of this histogram."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Named instruments, lazily created, snapshot as one sorted dict."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called *name* (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name* (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called *name* (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def as_dict(self) -> Dict[str, Any]:
        """Deterministic snapshot: instruments sorted by name."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def write_json(self, path: Union[str, Path]) -> None:
        """Write the snapshot to *path* as indented JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
