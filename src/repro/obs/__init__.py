"""Observability layer: demand tracing, metrics, trace diffing.

``repro.obs`` is the opt-in, zero-overhead-when-disabled observability
layer threaded through the stack:

* :mod:`repro.obs.trace` — structured JSONL tracing of kernel events and
  per-demand middleware spans (``--trace PATH`` on the experiment CLI);
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry fed by
  the result cache, the process pool and the simulation kernel
  (``--metrics-json PATH``);
* :mod:`repro.obs.diff` — ``python -m repro.obs.diff`` compares two
  traces and localises the first diverging event, turning the static
  determinism contract of :mod:`repro.lint` into a dynamic check;
* :mod:`repro.obs.names` — the canonical registry of metric and
  trace-event names; emission sites are checked against it statically
  by the whole-program analyzer (REPRO204).

Every instrumented component holds ``Optional[Tracer]`` /
``Optional[MetricsRegistry]`` and skips instrumentation entirely when
none is attached.
"""

# repro.obs.diff is deliberately NOT imported here: it doubles as the
# ``python -m repro.obs.diff`` entry point, and importing it from the
# package __init__ would re-execute it under two module names (with a
# RuntimeWarning) on every CLI invocation.  Import TraceDiff /
# diff_traces / render_diff from repro.obs.diff directly.
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.names import (
    EVENT_NAMES,
    METRIC_NAMES,
    METRIC_PREFIXES,
)
from repro.obs.trace import (
    NULL_TRACER,
    JsonlTracer,
    MemoryTracer,
    Tracer,
    merge_traces,
    read_trace,
)

__all__ = [
    "Counter",
    "EVENT_NAMES",
    "Gauge",
    "Histogram",
    "METRIC_NAMES",
    "METRIC_PREFIXES",
    "JsonlTracer",
    "MemoryTracer",
    "MetricsRegistry",
    "NULL_TRACER",
    "Tracer",
    "merge_traces",
    "read_trace",
]
