"""Structured execution tracing (``repro.obs``).

A *trace* is an append-only sequence of structured events describing one
run of the event-driven stack: kernel activity (schedule / dispatch /
cancel / compact), per-demand middleware spans (fan-out, per-release
arrival, timeout, adjudication, delivery) and Bayesian-runner
checkpoints.  Traces serve two purposes:

* **post-mortem observability** — when a demand misbehaves (a vanished
  delivery, an unexpected fault) the trace is the per-request execution
  record the §4.3 monitoring story presupposes;
* **dynamic determinism checking** — two runs of the same cell must
  produce *bit-identical* traces regardless of ``--jobs``;
  :mod:`repro.obs.diff` localises the first diverging event when they do
  not.

Design rules that make the second purpose work:

* events carry **simulated** time only — never wall-clock reads;
* every field is derived from seeded computation (no process-global
  counters such as message ids may appear in traced fields);
* serialisation is canonical: one JSON object per line, keys sorted.

Since the event store landed, serialized events are *versioned
envelopes* (:mod:`repro.obs.envelope`): the logical event plus a schema
marker, upcast on read — so a PR 3-era v1 trace file reads back as
exactly the logical events it always produced, and a trace file and an
event-store segment speak one format.

The disabled path is a single ``is None`` check at every instrumentation
site (components hold ``Optional[Tracer]``), so tracing costs nothing
when off.
"""

import io
import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from repro.obs.envelope import decode_event, encode_event


class Tracer:
    """Abstract sink for trace events.

    Subclasses set :attr:`enabled` and implement :meth:`emit`.  The base
    class is usable directly as a null tracer (drops everything), but
    instrumented components should prefer holding ``Optional[Tracer]``
    and skipping the call entirely when no tracer is attached.
    """

    #: Components may consult this to skip expensive field construction.
    enabled: bool = False

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event of *kind* with the given fields."""

    def close(self) -> None:
        """Flush and release any underlying resources."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: Shared no-op tracer for call sites that want a non-None default.
NULL_TRACER = Tracer()


class MemoryTracer(Tracer):
    """Collect events in memory as dicts (tests, in-process analysis)."""

    enabled = True

    def __init__(self, cell: str = ""):
        self.cell = cell
        self.events: List[Dict[str, Any]] = []

    def emit(self, kind: str, **fields: Any) -> None:
        event: Dict[str, Any] = {"seq": len(self.events), "kind": kind}
        if self.cell:
            event["cell"] = self.cell
        event.update(fields)
        self.events.append(event)

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """The recorded events of one kind, in order."""
        return [event for event in self.events if event["kind"] == kind]


class JsonlTracer(Tracer):
    """Write events to a JSONL file, one canonical JSON object per line.

    Serialisation is canonical (sorted keys, compact separators) so that
    two runs emitting the same events produce byte-identical files —
    the contract :mod:`repro.obs.diff` checks.

    Parameters
    ----------
    path:
        Output file (created/truncated; parent directories are created).
    cell:
        Optional cell label stamped on every event, so per-cell traces
        stay attributable after :func:`merge_traces`.
    """

    enabled = True

    def __init__(self, path: Union[str, Path], cell: str = ""):
        self.path = Path(path)
        self.cell = cell
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[io.TextIOWrapper] = open(
            self.path, "w", encoding="utf-8"
        )
        self._seq = 0

    def emit(self, kind: str, **fields: Any) -> None:
        handle = self._handle
        if handle is None:
            raise ValueError(f"tracer for {self.path} is closed")
        event: Dict[str, Any] = {"seq": self._seq, "kind": kind}
        if self.cell:
            event["cell"] = self.cell
        event.update(fields)
        self._seq += 1
        handle.write(encode_event(event))
        handle.write("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_trace(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Stream the logical events of a JSONL trace file, one at a time.

    A generator: one line is materialised per step, so reading a
    multi-gigabyte trace costs O(one event) of memory — the diff tool
    and every other consumer iterate instead of indexing.  Each line is
    decoded through the envelope upcaster chain
    (:mod:`repro.obs.envelope`), so v1 (PR 3) and current files yield
    identical logical event sequences for the same run.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from None
            if not isinstance(obj, dict):
                raise ValueError(
                    f"{path}:{line_number}: trace events must be objects"
                )
            try:
                event, _version = decode_event(obj)
            except ValueError as error:
                raise ValueError(
                    f"{path}:{line_number}: {error}"
                ) from None
            yield event


def merge_traces(
    parts: Iterable[Union[str, Path]], output: Union[str, Path]
) -> int:
    """Concatenate per-cell trace files into one trace, in given order.

    The caller supplies *parts* in a deterministic order (e.g. sorted
    cell file names); the merged file is then reproducible whenever the
    parts are.  Returns the number of event lines written.
    """
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    lines = 0
    with open(output, "w", encoding="utf-8") as merged:
        for part in parts:
            with open(part, "r", encoding="utf-8") as handle:
                for line in handle:
                    if line.strip():
                        merged.write(line if line.endswith("\n") else line + "\n")
                        lines += 1
    return lines
