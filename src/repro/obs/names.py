"""Canonical metric and trace-event names (``repro.obs``).

Every counter / gauge / histogram name handed to a
:class:`~repro.obs.metrics.MetricsRegistry` and every trace-event kind
handed to a :class:`~repro.obs.trace.Tracer` must be declared here.
The whole-program analyzer (rule REPRO204 in :mod:`repro.lint.program`)
verifies the emission sites against these sets *statically*, so a typo
in a metric name — which would silently fork a counter and falsify
fallback budgets and trace diffs — is a lint failure, not a mystery in
a dashboard.

Declared as plain frozen literals (no computation) so the analyzer can
read them from the AST without importing anything.  When adding an
instrument: declare the name here first, then emit it; REPRO204 flags
emissions of undeclared names, and :mod:`tests.obs` pins the registry
round-trip.
"""

from typing import FrozenSet, Tuple

#: Every registered metric instrument name (counters, gauges and
#: histograms share one namespace — the registry keys them per type).
METRIC_NAMES: FrozenSet[str] = frozenset({
    "aio.demands",
    "aio.faults",
    "aio.inflight_peak",
    "aio.queue_depth",
    "aio.queue_wait_seconds",
    "aio.throughput",
    "backend.batched_cells",
    "backend.batched_fallback_cells",
    "backend.columnar_cells",
    "backend.fallback_cells",
    "cache.corrupt",
    "cache.hit",
    "cache.miss",
    "cache.put",
    "kernel.compactions",
    "kernel.dispatched",
    "kernel.peak_heap",
    "pool.cell_seconds",
    "pool.cells_executed",
    "pool.inline_cells",
    "pool.jobs",
    "pool.queue_wait_seconds",
    "pool.utilization",
    "store.batch_appends",
    "store.batch_commits",
    "store.batch_resume_skipped_cells",
    "store.events_appended",
    "store.projection_catchup_events",
    "store.resume_skipped_cells",
    "store.segments_written",
    "store.upcasts_applied",
})

#: Prefixes of metric-name *families* whose suffix is computed at run
#: time (one counter per columnar fallback slug).  A dynamic metric
#: name must start with one of these; REPRO203 separately checks that
#: literal ``backend.fallback_reason.<slug>`` names use declared slugs.
METRIC_PREFIXES: Tuple[str, ...] = (
    "aio.release_up.",
    "backend.batched_fallback_reason.",
    "backend.fallback_reason.",
)

#: Every trace-event ``kind`` emitted through a Tracer: kernel activity
#: (schedule / dispatch / cancel / compact), middleware demand spans
#: (demand / invoke / collect / timeout / adjudicate / deliver),
#: Bayesian-runner checkpoints, and the event-store result snapshot
#: (``cell_result``, appended by :mod:`repro.store` when a stream's
#: cell completes).
EVENT_NAMES: FrozenSet[str] = frozenset({
    "adjudicate",
    "cancel",
    "cell_result",
    "checkpoint",
    "collect",
    "compact",
    "deliver",
    "demand",
    "dispatch",
    "invoke",
    "schedule",
    "timeout",
})
