"""Trace diff: localise the first diverging event between two runs.

``repro.lint`` checks the determinism contract *statically*;
``python -m repro.obs.diff`` completes it *dynamically*: record a trace
of the same experiment twice (e.g. ``--jobs 1`` vs ``--jobs 4``) and the
diff either certifies the traces identical or pinpoints the first event
where the two executions took different paths — the place to start
debugging, rather than a mismatched table cell thousands of events
later.

Usage::

    python -m repro.obs.diff A.jsonl B.jsonl [--context N]
                             [--ignore-field NAME ...]

Exit status: 0 when the traces are identical, 1 on divergence (or a
length mismatch), 2 on unreadable input.
"""

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import read_trace

#: Sentinel distinguishing "field absent" from "field is None".
_MISSING = object()


@dataclass(frozen=True)
class TraceDiff:
    """Outcome of comparing two traces event by event.

    ``divergence_index`` is the position of the first differing event
    (``None`` when the traces are identical); when one trace is a strict
    prefix of the other, it is the length of the shorter one and the
    missing side's event is ``None``.
    """

    events_a: int
    events_b: int
    divergence_index: Optional[int] = None
    event_a: Optional[Dict[str, Any]] = None
    event_b: Optional[Dict[str, Any]] = None
    differing_fields: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def identical(self) -> bool:
        return self.divergence_index is None


def _normalise(
    event: Dict[str, Any], ignore: Sequence[str]
) -> Dict[str, Any]:
    if not ignore:
        return event
    return {key: event[key] for key in event if key not in ignore}


def diff_traces(
    events_a: List[Dict[str, Any]],
    events_b: List[Dict[str, Any]],
    ignore_fields: Sequence[str] = (),
) -> TraceDiff:
    """Compare two event lists; return the first divergence, if any."""
    for index, (a, b) in enumerate(zip(events_a, events_b)):
        na, nb = _normalise(a, ignore_fields), _normalise(b, ignore_fields)
        if na != nb:
            differing = tuple(sorted(
                key
                for key in set(na) | set(nb)
                if na.get(key, _MISSING) != nb.get(key, _MISSING)
            ))
            return TraceDiff(
                events_a=len(events_a),
                events_b=len(events_b),
                divergence_index=index,
                event_a=a,
                event_b=b,
                differing_fields=differing,
            )
    if len(events_a) != len(events_b):
        index = min(len(events_a), len(events_b))
        longer = events_a if len(events_a) > len(events_b) else events_b
        return TraceDiff(
            events_a=len(events_a),
            events_b=len(events_b),
            divergence_index=index,
            event_a=events_a[index] if index < len(events_a) else None,
            event_b=events_b[index] if index < len(events_b) else None,
            differing_fields=tuple(sorted(longer[index])),
        )
    return TraceDiff(events_a=len(events_a), events_b=len(events_b))


def _render_event(event: Optional[Dict[str, Any]]) -> str:
    if event is None:
        return "<no event — trace ended>"
    return json.dumps(event, sort_keys=True)


def render_diff(
    diff: TraceDiff,
    name_a: str,
    name_b: str,
    events_a: Optional[List[Dict[str, Any]]] = None,
    context: int = 0,
) -> str:
    """Human-readable report of a :class:`TraceDiff`."""
    if diff.identical:
        return (
            f"traces identical: {diff.events_a} events\n"
            f"  A: {name_a}\n  B: {name_b}"
        )
    index = diff.divergence_index
    lines = [
        f"traces diverge at event #{index} "
        f"(A has {diff.events_a} events, B has {diff.events_b})",
        f"  A: {name_a}\n  B: {name_b}",
    ]
    if diff.differing_fields:
        lines.append(
            "differing fields: " + ", ".join(diff.differing_fields)
        )
    if context and events_a and index is not None:
        start = max(0, index - context)
        if start < index:
            lines.append(f"shared context (events #{start}..#{index - 1}):")
            for position in range(start, index):
                lines.append(f"  = {_render_event(events_a[position])}")
    lines.append(f"  A#{index}: {_render_event(diff.event_a)}")
    lines.append(f"  B#{index}: {_render_event(diff.event_b)}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description=(
            "Compare two repro.obs JSONL traces and localise the first "
            "diverging event (dynamic determinism check)."
        ),
    )
    parser.add_argument("trace_a", help="first trace (JSONL)")
    parser.add_argument("trace_b", help="second trace (JSONL)")
    parser.add_argument(
        "--context", type=int, default=3,
        help="shared events to print before the divergence (default 3)",
    )
    parser.add_argument(
        "--ignore-field", action="append", default=[], metavar="NAME",
        help="event field to ignore when comparing (repeatable)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the report; communicate via exit status only",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        events_a = read_trace(args.trace_a)
        events_b = read_trace(args.trace_b)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    diff = diff_traces(events_a, events_b, args.ignore_field)
    if not args.quiet:
        print(render_diff(diff, args.trace_a, args.trace_b,
                          events_a=events_a, context=args.context))
    return 0 if diff.identical else 1


if __name__ == "__main__":
    sys.exit(main())
