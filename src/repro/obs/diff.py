"""Trace diff: localise the first diverging event between two runs.

``repro.lint`` checks the determinism contract *statically*;
``python -m repro.obs.diff`` completes it *dynamically*: record a trace
of the same experiment twice (e.g. ``--jobs 1`` vs ``--jobs 4``) and the
diff either certifies the traces identical or pinpoints the first event
where the two executions took different paths — the place to start
debugging, rather than a mismatched table cell thousands of events
later.

The comparison is a *streaming first-divergence projection* over two
event logs: both sides are consumed one event at a time (a bounded ring
buffer holds the shared context for the report), so peak memory is
O(one segment line), never O(file) — diffing two multi-gigabyte traces
or two :class:`~repro.store.log.EventStream` directories costs the same
few kilobytes.  Inputs may be JSONL trace files (v1 or current
envelopes; the upcaster chain normalises both) or event-store stream
directories.

Usage::

    python -m repro.obs.diff A.jsonl B.jsonl [--context N]
                             [--ignore-field NAME ...]

Exit status: 0 when the traces are identical, 1 on divergence (or a
length mismatch), 2 on unreadable input.
"""

import argparse
import json
import sys
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.trace import read_trace

#: Sentinel distinguishing "field absent" from "field is None".
_MISSING = object()

#: Shared events retained for the divergence report (ring buffer).
CONTEXT_BUFFER = 8


@dataclass(frozen=True)
class TraceDiff:
    """Outcome of comparing two traces event by event.

    ``divergence_index`` is the position of the first differing event
    (``None`` when the traces are identical); when one trace is a strict
    prefix of the other, it is the length of the shorter one and the
    missing side's event is ``None``.  ``context_events`` holds up to
    :data:`CONTEXT_BUFFER` shared events preceding the divergence (the
    streaming comparator cannot seek back, so it carries them forward).
    """

    events_a: int
    events_b: int
    divergence_index: Optional[int] = None
    event_a: Optional[Dict[str, Any]] = None
    event_b: Optional[Dict[str, Any]] = None
    differing_fields: Tuple[str, ...] = field(default_factory=tuple)
    context_events: Tuple[Dict[str, Any], ...] = field(
        default_factory=tuple
    )

    @property
    def identical(self) -> bool:
        return self.divergence_index is None


def _normalise(
    event: Dict[str, Any], ignore: Sequence[str]
) -> Dict[str, Any]:
    if not ignore:
        return event
    return {key: event[key] for key in event if key not in ignore}


def _drain(iterator: Iterator[Dict[str, Any]]) -> int:
    """Exhaust an event iterator, counting (O(1) memory)."""
    return sum(1 for _ in iterator)


def diff_traces(
    events_a: Iterable[Dict[str, Any]],
    events_b: Iterable[Dict[str, Any]],
    ignore_fields: Sequence[str] = (),
) -> TraceDiff:
    """Streaming comparison of two event sequences.

    Accepts any iterables (lists, generators,
    :meth:`EventStream.read <repro.store.log.EventStream.read>` views);
    consumes both exactly once.  Event totals in the result are exact —
    after a divergence the remainders are drained *counted but not
    retained*, so memory stays bounded by one event per side plus the
    context ring.
    """
    it_a = iter(events_a)
    it_b = iter(events_b)
    recent: "deque[Dict[str, Any]]" = deque(maxlen=CONTEXT_BUFFER)
    index = 0
    while True:
        a = next(it_a, _MISSING)
        b = next(it_b, _MISSING)
        if a is _MISSING and b is _MISSING:
            return TraceDiff(events_a=index, events_b=index)
        if a is _MISSING or b is _MISSING:
            count_a = index + (0 if a is _MISSING else 1 + _drain(it_a))
            count_b = index + (0 if b is _MISSING else 1 + _drain(it_b))
            present = b if a is _MISSING else a
            return TraceDiff(
                events_a=count_a,
                events_b=count_b,
                divergence_index=index,
                event_a=None if a is _MISSING else a,
                event_b=None if b is _MISSING else b,
                differing_fields=tuple(sorted(present)),
                context_events=tuple(recent),
            )
        na = _normalise(a, ignore_fields)
        nb = _normalise(b, ignore_fields)
        if na != nb:
            differing = tuple(sorted(
                key
                for key in set(na) | set(nb)
                if na.get(key, _MISSING) != nb.get(key, _MISSING)
            ))
            return TraceDiff(
                events_a=index + 1 + _drain(it_a),
                events_b=index + 1 + _drain(it_b),
                divergence_index=index,
                event_a=a,
                event_b=b,
                differing_fields=differing,
                context_events=tuple(recent),
            )
        recent.append(a)
        index += 1


def _render_event(event: Optional[Dict[str, Any]]) -> str:
    if event is None:
        return "<no event — trace ended>"
    return json.dumps(event, sort_keys=True)


def render_diff(
    diff: TraceDiff,
    name_a: str,
    name_b: str,
    context: int = 0,
) -> str:
    """Human-readable report of a :class:`TraceDiff`."""
    if diff.identical:
        return (
            f"traces identical: {diff.events_a} events\n"
            f"  A: {name_a}\n  B: {name_b}"
        )
    index = diff.divergence_index
    lines = [
        f"traces diverge at event #{index} "
        f"(A has {diff.events_a} events, B has {diff.events_b})",
        f"  A: {name_a}\n  B: {name_b}",
    ]
    if diff.differing_fields:
        lines.append(
            "differing fields: " + ", ".join(diff.differing_fields)
        )
    if context and diff.context_events and index is not None:
        shown = list(diff.context_events)[-context:]
        start = index - len(shown)
        if shown:
            lines.append(f"shared context (events #{start}..#{index - 1}):")
            for event in shown:
                lines.append(f"  = {_render_event(event)}")
    lines.append(f"  A#{index}: {_render_event(diff.event_a)}")
    lines.append(f"  B#{index}: {_render_event(diff.event_b)}")
    return "\n".join(lines)


def events_of(path: str) -> Iterator[Dict[str, Any]]:
    """The logical event stream behind a CLI operand.

    A directory is an event-store stream (read via its commit index,
    segment by segment); anything else is a JSONL trace file.  Both are
    generators — nothing is materialised.
    """
    if Path(path).is_dir():
        from repro.store.log import EventStream

        stream = EventStream(path)
        if not stream.exists():
            raise ValueError(
                f"{path} is a directory but has no event-stream index"
            )
        return stream.read()
    return read_trace(path)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description=(
            "Compare two repro.obs JSONL traces (or repro.store stream "
            "directories) and localise the first diverging event "
            "(dynamic determinism check)."
        ),
    )
    parser.add_argument(
        "trace_a", help="first trace (JSONL file or stream directory)"
    )
    parser.add_argument(
        "trace_b", help="second trace (JSONL file or stream directory)"
    )
    parser.add_argument(
        "--context", type=int, default=3,
        help="shared events to print before the divergence (default 3)",
    )
    parser.add_argument(
        "--ignore-field", action="append", default=[], metavar="NAME",
        help="event field to ignore when comparing (repeatable)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the report; communicate via exit status only",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        # The readers are generators, so IO errors surface while the
        # diff consumes them — the whole comparison sits in the guard.
        diff = diff_traces(
            events_of(args.trace_a),
            events_of(args.trace_b),
            args.ignore_field,
        )
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(render_diff(diff, args.trace_a, args.trace_b,
                          context=args.context))
    return 0 if diff.identical else 1


if __name__ == "__main__":
    sys.exit(main())
