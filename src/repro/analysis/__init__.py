"""Analysis helpers for experiment results.

* :mod:`repro.analysis.stats` — finding checks (reliability orderings,
  the §5.1.1.4 confidence-error bound);
* :mod:`repro.analysis.correlation_estimation` — recover the Table-3/4
  outcome structure from monitoring logs (the inverse problem);
* :mod:`repro.analysis.plots` — ASCII line charts for the figure curves.
"""

from repro.analysis.correlation_estimation import (
    CorrelationEstimate,
    estimate_conditional_matrix,
    estimate_correlation,
    estimate_marginal,
)
from repro.analysis.plots import ascii_plot, plot_percentile_curves
from repro.analysis.stats import (
    confidence_error_bound,
    reliability_ordering,
    summarize_metrics,
)

__all__ = [
    "CorrelationEstimate",
    "estimate_conditional_matrix",
    "estimate_correlation",
    "estimate_marginal",
    "ascii_plot",
    "plot_percentile_curves",
    "confidence_error_bound",
    "reliability_ordering",
    "summarize_metrics",
]
