"""Terminal-friendly ASCII line plots for the experiment curves.

The paper's Figs 7-8 are line charts; the CLI renders them as tables for
exactness and, with these helpers, as ASCII plots for shape-at-a-glance
— no plotting dependency needed offline.
"""

from typing import Dict, List, Sequence

from repro.common.errors import ValidationError

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "oxs*+#@%"


def ascii_plot(
    series: Dict[str, Sequence[float]],
    x_values: Sequence[float],
    width: int = 72,
    height: int = 18,
    title: str = "",
) -> str:
    """Render one or more aligned series as an ASCII line chart.

    Parameters
    ----------
    series:
        Mapping of label -> y-values; all must match ``x_values`` in
        length.  Up to ``len(SERIES_GLYPHS)`` series.
    x_values:
        Shared x axis (monotone increasing).
    width, height:
        Character-cell dimensions of the plotting area.
    """
    if not series:
        raise ValidationError("no series to plot")
    if len(series) > len(SERIES_GLYPHS):
        raise ValidationError(
            f"too many series ({len(series)} > {len(SERIES_GLYPHS)})"
        )
    n = len(x_values)
    if n < 2:
        raise ValidationError("need at least two x values")
    for label, ys in series.items():
        if len(ys) != n:
            raise ValidationError(
                f"series {label!r} length {len(ys)} != x length {n}"
            )
    if width < 10 or height < 4:
        raise ValidationError("plot area too small")

    y_min = min(min(ys) for ys in series.values())
    y_max = max(max(ys) for ys in series.values())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x_values[0]), float(x_values[-1])
    if x_max == x_min:
        raise ValidationError("degenerate x axis")

    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]

    def to_cell(x: float, y: float):
        column = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        return height - 1 - row, column

    for glyph, (label, ys) in zip(SERIES_GLYPHS, series.items()):
        for x, y in zip(x_values, ys):
            row, column = to_cell(float(x), float(y))
            grid[row][column] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3e}"
    bottom_label = f"{y_min:.3e}"
    margin = max(len(top_label), len(bottom_label))
    for index, row in enumerate(grid):
        if index == 0:
            label = top_label.rjust(margin)
        elif index == height - 1:
            label = bottom_label.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |" + "".join(row))
    axis = " " * margin + " +" + "-" * width
    lines.append(axis)
    x_left = f"{x_min:g}"
    x_right = f"{x_max:g}"
    gap = max(1, width - len(x_left) - len(x_right))
    lines.append(" " * (margin + 2) + x_left + " " * gap + x_right)
    legend = "   ".join(
        f"{glyph}={label}"
        for glyph, label in zip(SERIES_GLYPHS, series.keys())
    )
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)


def plot_percentile_curves(curves, width: int = 72, height: int = 16) -> str:
    """ASCII plot of a :class:`~repro.experiments.percentile_curves.
    PercentileCurves` bundle (short legend labels)."""
    short_labels = {
        "Ch B: 90% percentile (perfect)": "B90-perfect",
        "Ch B: 99% percentile (omission)": "B99-omission",
        "Ch B: 99% percentile (back-to-back)": "B99-b2b",
        "Ch B: 99% percentile (perfect)": "B99-perfect",
        "Ch A: 99% percentile (perfect)": "A99-perfect",
    }
    series = {
        short_labels.get(label, label): values
        for label, values in curves.series.items()
    }
    return ascii_plot(
        series,
        curves.demands,
        width=width,
        height=height,
        title=f"pfd percentiles vs demands ({curves.scenario})",
    )
