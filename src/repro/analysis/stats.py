"""Statistical summaries used to check the paper's qualitative claims.

The reproduction does not chase the paper's absolute numbers (different
Monte-Carlo draws, and a documented latency-parameter inconsistency); it
checks the *findings*.  These helpers turn raw results into the
quantities those findings are stated over.
"""

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.simulation.metrics import SystemMetrics


def summarize_metrics(metrics: SystemMetrics) -> Dict[str, Dict[str, float]]:
    """Availability / reliability / MET per column of a Table-5/6 cell."""
    out: Dict[str, Dict[str, float]] = {}
    for label, row in (
        ("Rel1", metrics.releases[0]),
        ("Rel2", metrics.releases[1]),
        ("System", metrics.system),
    ):
        out[label] = {
            "availability": row.availability,
            "reliability": row.reliability,
            "met": row.mean_execution_time,
        }
    return out


def reliability_ordering(metrics: SystemMetrics) -> str:
    """Where the adjudicated system lands relative to the two releases.

    Returns one of

    * ``"above-both"`` — system reliability >= both releases' (the §5.2.3
      observation 3 high-correlation case and the Table-6 independence
      case);
    * ``"between"`` — at least the weaker release is beaten;
    * ``"below-both"`` — the architecture hurt reliability (never
      observed in the paper; flagged for regression detection).
    """
    system = metrics.system.reliability
    first = metrics.releases[0].reliability
    second = metrics.releases[1].reliability
    if system >= max(first, second):
        return "above-both"
    if system >= min(first, second):
        return "between"
    return "below-both"


def confidence_error_bound(
    perfect_low_series: Sequence[float],
    imperfect_high_series: Sequence[float],
) -> Tuple[bool, float]:
    """The §5.1.1.4 detection-imperfection bound.

    Checks whether the lower-confidence percentile under perfect
    detection stays below the higher-confidence percentile under
    imperfect detection throughout; returns ``(holds_everywhere,
    fraction_of_checkpoints_holding)``.
    """
    low = np.asarray(perfect_low_series, dtype=float)
    high = np.asarray(imperfect_high_series, dtype=float)
    if low.shape != high.shape:
        raise ValueError(
            f"series lengths differ: {low.shape} vs {high.shape}"
        )
    holds = low <= high
    return bool(holds.all()), float(holds.mean())
