"""Estimating the release-correlation structure from monitoring data.

The §5.2 simulation *imposes* a conditional outcome matrix (Table 4);
a real deployment faces the inverse problem: the middleware has been
collecting joint observations — what correlation structure do they
imply?  The answer matters twice:

* it validates (or refutes) the "indifference" coincident-failure prior
  of the white-box inference (§5.1.2 point 1), and
* the paper's closing remark: "the simulation results may help in
  shaping the 'prior' for a Bayesian assessment" — these estimators are
  the bridge from logs back to model parameters.

Estimators consume an :class:`~repro.core.database.ObservationLog` and
use each demand's recorded true outcomes (simulation) or observed
failure verdicts (production).
"""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.database import ObservationLog
from repro.simulation.correlation import (
    ConditionalOutcomeMatrix,
    OutcomeDistribution,
)
from repro.simulation.outcomes import OUTCOME_ORDER, Outcome


@dataclass(frozen=True)
class CorrelationEstimate:
    """Empirical joint-outcome structure of a release pair.

    Attributes
    ----------
    joint_demands:
        Demands on which both releases' outcomes were recorded.
    agreement_rate:
        Fraction of joint demands with identical outcome class — the
        empirical counterpart of Table 4's diagonal.
    coincident_failure_fraction:
        P(both fail | first fails) — the empirical counterpart of the
        white-box model's expected q (the indifference prior implies
        E[q] = 0.5).
    """

    joint_demands: int
    agreement_rate: float
    coincident_failure_fraction: float


def _joint_outcome_counts(
    log: ObservationLog, release_a: str, release_b: str
) -> np.ndarray:
    counts = np.zeros((3, 3), dtype=np.int64)
    index = {outcome: i for i, outcome in enumerate(OUTCOME_ORDER)}
    for record in log:
        obs_a = record.releases.get(release_a)
        obs_b = record.releases.get(release_b)
        if obs_a is None or obs_b is None:
            continue
        if not (obs_a.collected and obs_b.collected):
            continue
        if obs_a.true_outcome is None or obs_b.true_outcome is None:
            continue
        counts[index[obs_a.true_outcome], index[obs_b.true_outcome]] += 1
    return counts


def estimate_correlation(
    log: ObservationLog, release_a: str, release_b: str
) -> CorrelationEstimate:
    """Summarise the empirical joint-outcome structure of a pair."""
    counts = _joint_outcome_counts(log, release_a, release_b)
    total = int(counts.sum())
    if total == 0:
        return CorrelationEstimate(0, float("nan"), float("nan"))
    agreement = float(np.trace(counts) / total)
    # Failure = ER or NER (rows/cols 1 and 2).
    a_fails = counts[1:, :].sum()
    both_fail = counts[1:, 1:].sum()
    coincident = float(both_fail / a_fails) if a_fails else float("nan")
    return CorrelationEstimate(total, agreement, coincident)


def estimate_conditional_matrix(
    log: ObservationLog, release_a: str, release_b: str
) -> Optional[ConditionalOutcomeMatrix]:
    """Empirical ``P(outcome B | outcome A)`` matrix from the log.

    Returns None when any conditional row has no observations (the
    matrix would be undefined); with the paper's Table-3 failure rates a
    few thousand demands suffice.
    """
    counts = _joint_outcome_counts(log, release_a, release_b)
    if (counts.sum(axis=1) == 0).any():
        return None
    rows: Dict[Outcome, Tuple[float, float, float]] = {}
    for i, outcome in enumerate(OUTCOME_ORDER):
        row = counts[i] / counts[i].sum()
        rows[outcome] = tuple(row)
    return ConditionalOutcomeMatrix(rows)


def estimate_marginal(
    log: ObservationLog, release: str
) -> Optional[OutcomeDistribution]:
    """Empirical outcome marginal of one release (collected demands)."""
    counts = {outcome: 0 for outcome in OUTCOME_ORDER}
    for record in log:
        observation = record.releases.get(release)
        if (
            observation is None
            or not observation.collected
            or observation.true_outcome is None
        ):
            continue
        counts[observation.true_outcome] += 1
    total = sum(counts[outcome] for outcome in OUTCOME_ORDER)
    if total == 0:
        return None
    return OutcomeDistribution(
        *(counts[outcome] / total for outcome in OUTCOME_ORDER)
    )
