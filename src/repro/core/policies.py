"""Upgrade policies: the managed upgrade and its baselines (paper §3).

The paper contrasts the managed upgrade against what integrators
otherwise do when a component WS publishes a new release:

* switch immediately (risking the new release's unknown faults);
* never switch / stick with the old release (risking abandonment when
  the provider withdraws it);
* the single-operational-release scenario (§3.2), where the composite
  provider can only *adjust its published confidence conservatively* —
  treating the upgraded WS as no better than the old release.

Each policy answers: at demand index *t* of the transition period, which
release(s) serve traffic?  :func:`expected_incorrect_responses` computes
the analytic expected number of incorrect responses delivered over a
horizon under each policy — the quantity the policy ablation bench
reports.
"""

from abc import ABC, abstractmethod
from typing import Optional, Tuple

from repro.bayes.blackbox import BlackBoxAssessor
from repro.bayes.demand_process import TwoReleaseGroundTruth
from repro.common.errors import ConfigurationError


class UpgradePolicy(ABC):
    """Decides which releases serve at each demand of the transition."""

    name: str = "policy"

    @abstractmethod
    def serving(self, demand_index: int) -> Tuple[bool, bool]:
        """(old serves?, new serves?) at *demand_index* (0-based)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ImmediateSwitchPolicy(UpgradePolicy):
    """Adopt the new release the moment it is published."""

    name = "immediate-switch"

    def serving(self, demand_index: int) -> Tuple[bool, bool]:
        return (False, True)


class NeverSwitchPolicy(UpgradePolicy):
    """Stay on the old release indefinitely (§3, option 2)."""

    name = "never-switch"

    def serving(self, demand_index: int) -> Tuple[bool, bool]:
        return (True, False)


class ManagedUpgradePolicy(UpgradePolicy):
    """Run both releases 1-out-of-2 until the switch point, then the new.

    *switch_at* is the demand index at which the switching criterion was
    satisfied (None = not yet, keep running both — the paper stresses
    this is safe: "the 1-out-of-2 by definition is no worse than the more
    reliable channel", so the switch can be prolonged indefinitely).
    """

    name = "managed-upgrade"

    def __init__(self, switch_at: Optional[int]):
        if switch_at is not None and switch_at < 0:
            raise ConfigurationError(f"switch_at must be >= 0: {switch_at!r}")
        self.switch_at = switch_at

    def serving(self, demand_index: int) -> Tuple[bool, bool]:
        if self.switch_at is None or demand_index < self.switch_at:
            return (True, True)
        return (False, True)

    def __repr__(self) -> str:
        return f"ManagedUpgradePolicy(switch_at={self.switch_at!r})"


def expected_incorrect_responses(
    policy: UpgradePolicy,
    ground_truth: TwoReleaseGroundTruth,
    horizon: int,
    detection_coverage: float = 1.0,
) -> float:
    """Expected incorrect responses delivered to consumers over *horizon*.

    Per-demand delivered-failure probability:

    * old only  -> pA;
    * new only  -> pB;
    * both (1-out-of-2 with the §5.2.1 random-valid adjudication and
      perfect evident-failure detection scaled by *detection_coverage*):
      coincident failures (pAB) always escape; discordant failures escape
      when the failure is non-evident to the middleware *and* the random
      pick chooses the bad response — i.e. with probability
      ``0.5 * (1 - detection_coverage)`` each.
    """
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0: {horizon!r}")
    escape = 0.5 * (1.0 - detection_coverage)
    p_discordant = (
        (ground_truth.p_a - ground_truth.p_ab)
        + (ground_truth.p_b - ground_truth.p_ab)
    )
    per_demand_both = ground_truth.p_ab + escape * p_discordant
    total = 0.0
    for t in range(horizon):
        old_serves, new_serves = policy.serving(t)
        if old_serves and new_serves:
            total += per_demand_both
        elif old_serves:
            total += ground_truth.p_a
        elif new_serves:
            total += ground_truth.p_b
        else:
            raise ConfigurationError(
                f"{policy.name} serves nothing at demand {t}"
            )
    return total


class ConservativeSingleReleaseAdjustment:
    """§3.2: single operational release, conservative confidence handling.

    When the provider replaces the only deployed release, the composite
    provider cannot compare releases; the conservative rule (after
    Littlewood & Wright [12]) is to treat the upgraded WS *as if it were
    no better than the old release*: published confidence is the minimum
    of the old release's achieved confidence and whatever prior the new
    release justifies, and the operational evidence counter restarts.
    """

    def __init__(self, old_assessor: BlackBoxAssessor):
        self.old_assessor = old_assessor

    def adjusted_confidence(
        self, new_assessor: BlackBoxAssessor, target_pfd: float
    ) -> float:
        """Confidence the composite may publish for the upgraded WS."""
        old_confidence = self.old_assessor.confidence(target_pfd)
        new_confidence = new_assessor.confidence(target_pfd)
        return min(old_confidence, new_confidence)
