"""Management subsystem (paper §4.4 and the §6.1 harness operations).

Controls the operational releases and the current operating mode based on
the monitoring subsystem's assessment; adjudication itself lives in
:mod:`repro.core.adjudicators` and is invoked by the middleware.  Every
administrative action is logged with its simulated timestamp, giving the
audit trail "for further analysis" that §4.1 requires.

The §6.1 consumer-facing configuration operations map 1:1:

* add/remove releases -> :meth:`ManagementSubsystem.add_release` /
  :meth:`ManagementSubsystem.remove_release`;
* serial/concurrent execution -> :meth:`ManagementSubsystem.set_mode`;
* explicit adjudication mechanism -> :meth:`ManagementSubsystem.
  set_adjudicator`;
* read back the confidence -> :meth:`ManagementSubsystem.
  read_confidence`.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.core.adjudicators import Adjudicator
from repro.core.middleware import UpgradeMiddleware
from repro.core.modes import ModeConfig
from repro.services.endpoint import ServiceEndpoint
from repro.simulation.clock import SimulationClock
from repro.simulation.timing import SystemTimingPolicy


@dataclass(frozen=True)
class ManagementAction:
    """One logged administrative action."""

    timestamp: float
    action: str
    detail: str


class ManagementSubsystem:
    """Administrative facade over the upgrade middleware.

    Parameters
    ----------
    middleware:
        The middleware under management.
    clock:
        Source of timestamps for the action log (the simulator's clock).
    """

    def __init__(
        self, middleware: UpgradeMiddleware, clock: SimulationClock
    ):
        self.middleware = middleware
        self.clock = clock
        self.actions: List[ManagementAction] = []

    def _log(self, action: str, detail: str) -> None:
        self.actions.append(
            ManagementAction(self.clock.now, action, detail)
        )

    # ------------------------------------------------------------------
    # release management
    # ------------------------------------------------------------------

    def add_release(self, endpoint: ServiceEndpoint) -> None:
        """Deploy a (new) release behind the WS interface."""
        self.middleware.add_endpoint(endpoint)
        self._log("add-release", endpoint.name)

    def remove_release(self, name: str) -> ServiceEndpoint:
        """Phase a release out of the deployment."""
        endpoint = self.middleware.remove_endpoint(name)
        self._log("remove-release", name)
        return endpoint

    def recover_release(self, name: str) -> None:
        """Recover a failed release (bring it back online) — §4.1's
        "recovery of the failed releases" responsibility."""
        for endpoint in self.middleware.endpoints:
            if endpoint.name == name:
                endpoint.bring_online()
                self._log("recover-release", name)
                return
        raise LookupError(f"no deployed release named {name!r}")

    # ------------------------------------------------------------------
    # mode / policy control
    # ------------------------------------------------------------------

    def set_mode(self, mode: ModeConfig) -> None:
        """Choose the current operating mode (§4.2)."""
        self.middleware.set_mode(mode)
        self._log("set-mode", mode.mode.value)

    def set_timing(self, timing: SystemTimingPolicy) -> None:
        """Change the TimeOut / adjudication delay dynamically."""
        self.middleware.set_timing(timing)
        self._log(
            "set-timing",
            f"timeout={timing.timeout}, dT={timing.adjudication_delay}",
        )

    def set_adjudicator(self, adjudicator: Adjudicator) -> None:
        """Choose the adjudication mechanism (§6.1)."""
        self.middleware.set_adjudicator(adjudicator)
        self._log("set-adjudicator", adjudicator.name)

    # ------------------------------------------------------------------
    # consumer-facing confidence readback (§6.1)
    # ------------------------------------------------------------------

    def read_confidence(
        self, release: str, target_pfd: float
    ) -> Optional[float]:
        """Current confidence in a release's correctness, or None when no
        monitor/assessment is attached."""
        monitor = self.middleware.monitor
        if monitor is None or monitor.blackbox_prior is None:
            return None
        return monitor.confidence_in_correctness(release, target_pfd)

    def read_availability(self, release: str) -> Optional[float]:
        """Observed availability of one release."""
        monitor = self.middleware.monitor
        if monitor is None:
            return None
        return monitor.availability(release)

    def __repr__(self) -> str:
        return (
            f"ManagementSubsystem(releases="
            f"{self.middleware.release_names()!r}, "
            f"actions={len(self.actions)})"
        )
