"""Managed-upgrade reports (the §4.1 "logging ... for further analysis").

Turns a finished (or in-flight) managed upgrade — monitor, management
log, controller state — into a human-readable report: per-release
dependability summary, joint-evidence table, current confidence, the
switch decision, and the administrative audit trail.  Used by the
examples and available to any deployment embedding the middleware.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.common.tables import render_table
from repro.core.controller import UpgradeController
from repro.core.management import ManagementSubsystem
from repro.core.monitor import MonitoringSubsystem


@dataclass(frozen=True)
class ReleaseSummary:
    """One release's dependability roll-up."""

    release: str
    demands: int
    availability: float
    mean_execution_time: float
    observed_failure_rate: float


def summarize_release(
    monitor: MonitoringSubsystem, release: str
) -> ReleaseSummary:
    """Roll one release's observation log up into a summary."""
    tally = monitor.log.tally(release)
    return ReleaseSummary(
        release=release,
        demands=tally.demands,
        availability=tally.availability,
        mean_execution_time=tally.mean_execution_time,
        observed_failure_rate=tally.observed_failure_rate,
    )


def upgrade_report(
    monitor: MonitoringSubsystem,
    management: Optional[ManagementSubsystem] = None,
    controller: Optional[UpgradeController] = None,
    confidence_levels: tuple = (0.9, 0.99),
) -> str:
    """Render the full managed-upgrade report as text.

    Sections: per-release dependability, joint evidence + posterior
    bounds (when a white-box assessor is attached), the switch decision,
    and the management audit trail.
    """
    sections: List[str] = []

    releases = monitor.log.release_names()
    rows = []
    for release in releases:
        summary = summarize_release(monitor, release)
        rows.append([
            summary.release,
            summary.demands,
            summary.availability,
            summary.mean_execution_time,
            summary.observed_failure_rate,
        ])
    sections.append(render_table(
        ["Release", "Demands", "Availability", "MET",
         "Observed failure rate"],
        rows,
        title="Per-release dependability",
    ))

    if monitor.watched_pair is not None and monitor.whitebox is not None:
        old_name, new_name = monitor.watched_pair
        counts = monitor.whitebox.counts
        sections.append(
            "Joint evidence (both releases responded): "
            f"both-fail={counts.both_fail}, "
            f"only {old_name} fails={counts.only_first_fails}, "
            f"only {new_name} fails={counts.only_second_fails}, "
            f"both-ok={counts.both_succeed}"
        )
        bound_rows = []
        for level in confidence_levels:
            bound_rows.append([
                f"{level:.0%}",
                monitor.whitebox.percentile_a(level),
                monitor.whitebox.percentile_b(level),
            ])
        sections.append(render_table(
            ["Confidence", f"pfd bound {old_name}",
             f"pfd bound {new_name}"],
            bound_rows,
            title="Posterior pfd bounds",
            float_digits=6,
        ))

    if controller is not None:
        if controller.switched:
            record = controller.switch_record
            sections.append(
                f"Switch decision: SWITCHED at demand "
                f"{record.demand_index} (t={record.timestamp:.1f}s) by "
                f"{record.criterion}; retired {record.removed_release}, "
                f"now serving {record.kept_release}."
            )
        else:
            sections.append(
                "Switch decision: still in managed upgrade "
                f"(criterion {controller.criterion.name} not yet "
                "satisfied); serving 1-out-of-N — by construction no "
                "worse than the most reliable release."
            )

    if management is not None and management.actions:
        action_rows = [
            [f"{action.timestamp:.1f}", action.action, action.detail]
            for action in management.actions
        ]
        sections.append(render_table(
            ["t (s)", "Action", "Detail"],
            action_rows,
            title="Management audit trail",
        ))

    return "\n\n".join(sections)
