"""Upgrade controller: runs the managed upgrade end to end.

Wires together a middleware (with its monitor), the management subsystem
and a switching criterion.  After every demand it re-evaluates the
criterion against the monitor's white-box assessor (at a configurable
cadence — evaluating a 3-D posterior every demand is wasteful); once the
criterion holds, it switches: the old release is removed from the
deployment and the decision is recorded.

This is the component the §3.1/§3.3 narratives call "the composite
service runs its own testing campaign against the new release ... once it
gains sufficient confidence it may switch".
"""

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.core.management import ManagementSubsystem
from repro.core.middleware import UpgradeMiddleware
from repro.core.switching import SwitchingCriterion


@dataclass(frozen=True)
class SwitchRecord:
    """When and why the controller switched."""

    demand_index: int
    timestamp: float
    criterion: str
    removed_release: str
    kept_release: str


class UpgradeController:
    """Automatic switch-over once the criterion is satisfied.

    Parameters
    ----------
    middleware:
        Middleware with a monitor whose ``watched_pair`` is the
        (old, new) release pair under assessment.
    management:
        Management facade used to execute the switch.
    criterion:
        The §5.1.1.2 switching criterion.
    evaluate_every:
        Re-evaluate the criterion every this many demands.
    min_demands:
        Never switch before this many demands have been observed (guards
        against a vacuously satisfied criterion on no data).
    """

    def __init__(
        self,
        middleware: UpgradeMiddleware,
        management: ManagementSubsystem,
        criterion: SwitchingCriterion,
        evaluate_every: int = 100,
        min_demands: int = 100,
    ):
        monitor = middleware.monitor
        if monitor is None or monitor.whitebox is None:
            raise ConfigurationError(
                "the controller needs a monitor with a white-box assessor"
            )
        if monitor.watched_pair is None:
            raise ConfigurationError(
                "the monitor must watch an (old, new) release pair"
            )
        if evaluate_every <= 0:
            raise ConfigurationError(
                f"evaluate_every must be > 0: {evaluate_every!r}"
            )
        self.middleware = middleware
        self.management = management
        self.criterion = criterion
        self.evaluate_every = int(evaluate_every)
        self.min_demands = int(min_demands)
        self.switch_record: Optional[SwitchRecord] = None
        self._demands = 0
        middleware.on_demand_closed(self._after_demand)

    @property
    def switched(self) -> bool:
        """True once the controller has executed the switch."""
        return self.switch_record is not None

    def _after_demand(self, record) -> None:
        if self.switched:
            return
        old_name, new_name = self.middleware.monitor.watched_pair
        deployed = self.middleware.release_names()
        # A managed upgrade is only in progress while both the old and
        # the new release are deployed side by side; before the new
        # release appears the criterion could hold vacuously (e.g.
        # Criterion 3 on identical priors with no data).
        if old_name not in deployed or new_name not in deployed:
            return
        self._demands += 1
        if self._demands < self.min_demands:
            return
        if self._demands % self.evaluate_every:
            return
        monitor = self.middleware.monitor
        if self.criterion.is_satisfied(monitor.whitebox):
            self._execute_switch()

    def _execute_switch(self) -> None:
        old_name, new_name = self.middleware.monitor.watched_pair
        self.management.remove_release(old_name)
        self.switch_record = SwitchRecord(
            demand_index=self._demands,
            timestamp=self.management.clock.now,
            criterion=self.criterion.name,
            removed_release=old_name,
            kept_release=new_name,
        )

    def __repr__(self) -> str:
        state = (
            f"switched at demand {self.switch_record.demand_index}"
            if self.switched
            else f"assessing ({self._demands} demands)"
        )
        return f"UpgradeController(criterion={self.criterion.name!r}, {state})"
