"""Monitoring subsystem (paper §4.3).

Watches every demand through the middleware: availability (was a response
collected within TimeOut?), execution time, and correctness of each
release's response.  Correctness judgements pass through an *online
detection policy* — the per-demand counterpart of the §5.1.1.3 imperfect
detection models — before being stored in the observation database and
fed to the Bayesian assessors:

* a black-box assessor per release (eq. 1), and
* one white-box assessor (eq. 2-6) for the designated (old, new) pair.
"""

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.bayes.attributes import (
    AvailabilityAssessor,
    ResponsivenessAssessor,
)
from repro.bayes.blackbox import BlackBoxAssessor
from repro.bayes.beta import TruncatedBeta
from repro.bayes.counts import JointCounts
from repro.bayes.whitebox import WhiteBoxAssessor
from repro.common.errors import ConfigurationError
from repro.core.adjudicators import Adjudication, CollectedResponse
from repro.core.database import (
    DemandRecord,
    ObservationLog,
    ReleaseObservation,
)
from repro.simulation.outcomes import Outcome


# ----------------------------------------------------------------------
# online detection policies (per-demand §5.1.1.3 counterparts)
# ----------------------------------------------------------------------


class OnlineDetectionPolicy:
    """Judges observed failures for the responses of one demand.

    Receives, per release, the *true* outcome (derived from the response
    payload vs the reference answer) and returns the oracle's verdict.
    Evident failures (declared faults) are always observed — an exception
    announces itself; imperfection applies to the judgement of
    non-evident failures.
    """

    name = "perfect"

    def judge(
        self,
        outcomes: Dict[str, Outcome],
        payloads: Dict[str, object],
        rng: np.random.Generator,
    ) -> Dict[str, bool]:
        """Map release -> observed-failure verdict."""
        return {
            release: outcome.is_failure
            for release, outcome in outcomes.items()
        }


class OmissionOnlinePolicy(OnlineDetectionPolicy):
    """Each oracle independently misses a non-evident failure w.p. p_omit."""

    name = "omission"

    def __init__(self, p_omit: float):
        if not 0.0 <= p_omit <= 1.0:
            raise ConfigurationError(f"p_omit must be in [0,1]: {p_omit!r}")
        self.p_omit = p_omit

    def judge(
        self,
        outcomes: Dict[str, Outcome],
        payloads: Dict[str, object],
        rng: np.random.Generator,
    ) -> Dict[str, bool]:
        verdicts: Dict[str, bool] = {}
        for release, outcome in outcomes.items():
            if outcome is Outcome.NON_EVIDENT_FAILURE:
                verdicts[release] = rng.random() >= self.p_omit
            else:
                verdicts[release] = outcome.is_failure
        return verdicts


class BackToBackOnlinePolicy(OnlineDetectionPolicy):
    """Cross-comparison of the releases is the only non-evident oracle.

    A non-evident failure is observed only when the compared payloads
    disagree; coincident non-evident failures with identical payloads
    (the paper's pessimistic assumption about two releases of the same
    product) are scored as successes for both releases.
    """

    name = "back-to-back"

    def judge(
        self,
        outcomes: Dict[str, Outcome],
        payloads: Dict[str, object],
        rng: np.random.Generator,
    ) -> Dict[str, bool]:
        distinct_payloads = {
            repr(payloads[r])
            for r, outcome in outcomes.items()
            if outcome is not Outcome.EVIDENT_FAILURE
        }
        verdicts: Dict[str, bool] = {}
        for release, outcome in outcomes.items():
            if outcome is Outcome.NON_EVIDENT_FAILURE:
                # Detectable only if somebody produced a different payload.
                verdicts[release] = len(distinct_payloads) > 1
            else:
                verdicts[release] = outcome.is_failure
        return verdicts


# ----------------------------------------------------------------------
# the monitoring subsystem proper
# ----------------------------------------------------------------------


class MonitoringSubsystem:
    """Per-demand measurement, storage and Bayesian assessment.

    Parameters
    ----------
    rng:
        Randomness for the detection policy.
    detection:
        The online detection policy (perfect by default).
    watched_pair:
        ``(old release name, new release name)`` to feed the white-box
        assessor; None disables white-box assessment.
    whitebox_assessor:
        The white-box assessor for the watched pair (required when
        *watched_pair* is set).
    blackbox_prior:
        pfd prior used for every release's black-box assessor; None
        disables black-box assessment.
    responsiveness_deadline:
        Latency deadline (seconds) for the per-release responsiveness
        assessors (§6.1: "confidence in availability, etc."); None
        disables responsiveness assessment.  Availability assessors are
        always maintained — they are cheap and timeout observation is
        free.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        detection: Optional[OnlineDetectionPolicy] = None,
        watched_pair: Optional[Tuple[str, str]] = None,
        whitebox_assessor: Optional[WhiteBoxAssessor] = None,
        blackbox_prior: Optional[TruncatedBeta] = None,
        responsiveness_deadline: Optional[float] = None,
    ):
        if watched_pair is not None and whitebox_assessor is None:
            raise ConfigurationError(
                "watched_pair requires a whitebox_assessor"
            )
        self._rng = rng
        self.detection = detection or OnlineDetectionPolicy()
        self.watched_pair = watched_pair
        self.whitebox = whitebox_assessor
        self.blackbox_prior = blackbox_prior
        self.responsiveness_deadline = responsiveness_deadline
        self.log = ObservationLog()
        self._blackbox: Dict[str, BlackBoxAssessor] = {}
        self._availability: Dict[str, AvailabilityAssessor] = {}
        self._responsiveness: Dict[str, ResponsivenessAssessor] = {}
        self.demands_seen = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    @staticmethod
    def classify(response, reference_answer: object) -> Outcome:
        """Derive a response's true outcome from its content.

        Fault -> evident failure; result == reference -> correct;
        anything else -> non-evident failure.  With no reference answer
        (production use) only evident failures can be classified.
        """
        if response.is_fault:
            return Outcome.EVIDENT_FAILURE
        if reference_answer is None or response.result == reference_answer:
            return Outcome.CORRECT
        return Outcome.NON_EVIDENT_FAILURE

    def record_demand(
        self,
        request_id: str,
        timestamp: float,
        active_releases: Sequence[str],
        collected: Sequence[CollectedResponse],
        adjudication: Adjudication,
        system_time: Optional[float],
        reference_answer: object = None,
        invoked_releases: Optional[Sequence[str]] = None,
    ) -> DemandRecord:
        """Store one demand's observations and update the assessors.

        *invoked_releases* names the active releases the middleware
        actually sent the request to; ``None`` means all of them (the
        parallel modes).  A release that is active but was never invoked
        (sequential mode after an earlier valid response) is recorded
        with ``invoked=False`` and contributes **no** availability
        evidence — only invoked-but-silent releases count as
        unavailable.
        """
        self.demands_seen += 1
        outcomes: Dict[str, Outcome] = {}
        payloads: Dict[str, object] = {}
        times: Dict[str, float] = {}
        for item in collected:
            outcomes[item.release] = self.classify(
                item.response, reference_answer
            )
            payloads[item.release] = item.response.result
            times[item.release] = item.execution_time

        verdicts = self.detection.judge(outcomes, payloads, self._rng)

        invoked = (
            set(invoked_releases)
            if invoked_releases is not None
            else set(active_releases)
        )
        releases: Dict[str, ReleaseObservation] = {}
        for name in active_releases:
            if name in outcomes:
                releases[name] = ReleaseObservation(
                    collected=True,
                    execution_time=times[name],
                    true_outcome=outcomes[name],
                    observed_failure=verdicts[name],
                )
            else:
                releases[name] = ReleaseObservation(
                    collected=False, invoked=name in invoked
                )

        system_outcome = (
            self.classify(adjudication.response, reference_answer)
            if adjudication.response is not None
            and adjudication.verdict != "unavailable"
            else None
        )
        record = DemandRecord(
            request_id=request_id,
            timestamp=timestamp,
            releases=releases,
            system_verdict=adjudication.verdict,
            system_outcome=system_outcome,
            system_time=system_time,
        )
        self.log.append(record)
        self._update_assessors(record)
        return record

    def _update_assessors(self, record: DemandRecord) -> None:
        for name, observation in record.releases.items():
            if observation.invoked:
                # Not-invoked releases carry no availability evidence;
                # feeding them as failures would corrupt the assessor
                # (sequential mode would score an idle release as down).
                self.availability_for(name).observe(observation.collected)
            if (
                self.responsiveness_deadline is not None
                and observation.collected
                and observation.execution_time is not None
            ):
                self.responsiveness_for(name).observe(
                    observation.execution_time
                )
        if self.blackbox_prior is not None:
            for name, observation in record.releases.items():
                if not observation.collected:
                    continue
                assessor = self.blackbox_for(name)
                assessor.observe(
                    demands=1,
                    failures=1 if observation.observed_failure else 0,
                )
        if self.watched_pair is not None and self.whitebox is not None:
            old_name, new_name = self.watched_pair
            obs_a = record.releases.get(old_name)
            obs_b = record.releases.get(new_name)
            if (
                obs_a is not None
                and obs_b is not None
                and obs_a.collected
                and obs_b.collected
            ):
                a_failed = bool(obs_a.observed_failure)
                b_failed = bool(obs_b.observed_failure)
                self.whitebox.observe(
                    JointCounts(
                        both_fail=int(a_failed and b_failed),
                        only_first_fails=int(a_failed and not b_failed),
                        only_second_fails=int(b_failed and not a_failed),
                        both_succeed=int(not a_failed and not b_failed),
                    )
                )

    # ------------------------------------------------------------------
    # queries (the §6.1 "read back the confidence" operations)
    # ------------------------------------------------------------------

    def blackbox_for(self, release: str) -> BlackBoxAssessor:
        """The black-box assessor of one release (lazily created)."""
        if self.blackbox_prior is None:
            raise ConfigurationError("black-box assessment is disabled")
        if release not in self._blackbox:
            self._blackbox[release] = BlackBoxAssessor(self.blackbox_prior)
        return self._blackbox[release]

    def availability_for(self, release: str) -> AvailabilityAssessor:
        """The availability assessor of one release (lazily created)."""
        if release not in self._availability:
            self._availability[release] = AvailabilityAssessor()
        return self._availability[release]

    def responsiveness_for(self, release: str) -> ResponsivenessAssessor:
        """The responsiveness assessor of one release (lazily created)."""
        if self.responsiveness_deadline is None:
            raise ConfigurationError(
                "responsiveness assessment is disabled (no deadline set)"
            )
        if release not in self._responsiveness:
            self._responsiveness[release] = ResponsivenessAssessor(
                self.responsiveness_deadline
            )
        return self._responsiveness[release]

    def confidence_in_correctness(self, release: str, target_pfd: float) -> float:
        """P(pfd of *release* <= target) from its black-box assessor."""
        return self.blackbox_for(release).confidence(target_pfd)

    def confidence_in_availability(
        self, release: str, target_availability: float
    ) -> float:
        """P(availability of *release* >= target | observations)."""
        return self.availability_for(release).confidence(
            target_availability
        )

    def confidence_in_responsiveness(
        self, release: str, target_fraction: float
    ) -> float:
        """P(P(latency <= deadline) >= target | observations)."""
        return self.responsiveness_for(release).confidence(target_fraction)

    def availability(self, release: str) -> float:
        """Observed availability (responses within TimeOut / demands)."""
        return self.log.tally(release).availability

    def mean_execution_time(self, release: str) -> float:
        """Observed MET of one release."""
        return self.log.tally(release).mean_execution_time

    def __repr__(self) -> str:
        return (
            f"MonitoringSubsystem(demands={self.demands_seen}, "
            f"detection={self.detection.name!r}, "
            f"watched_pair={self.watched_pair!r})"
        )
