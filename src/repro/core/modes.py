"""Operating modes of the upgrade middleware (paper §4.2).

Four modes govern *when* the middleware stops collecting responses:

1. **Parallel, maximum reliability** — wait for all deployed releases
   (or TimeOut), then adjudicate everything collected;
2. **Parallel, maximum responsiveness** — return the fastest valid
   (non-evidently-incorrect) response immediately; keep collecting the
   rest until TimeOut for monitoring purposes;
3. **Parallel, dynamic reliability/responsiveness** — wait for up to
   ``min_responses`` responses but no longer than TimeOut, then
   adjudicate what arrived (the generalised mode; both counts and the
   TimeOut can be changed at run time through the management subsystem);
4. **Sequential, minimal server capacity** — execute releases one at a
   time (fixed or random order); a subsequent release runs only if the
   previous response was evidently incorrect.
"""

import enum
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError


class OperatingMode(enum.Enum):
    """The §4.2 middleware operating modes."""

    PARALLEL_RELIABILITY = "parallel-reliability"
    PARALLEL_RESPONSIVENESS = "parallel-responsiveness"
    PARALLEL_DYNAMIC = "parallel-dynamic"
    SEQUENTIAL = "sequential"

    @property
    def is_parallel(self) -> bool:
        return self is not OperatingMode.SEQUENTIAL


class SequentialOrder(enum.Enum):
    """Release execution order in sequential mode (§4.2: "the order of
    execution can be chosen randomly or can be predefined")."""

    FIXED = "fixed"
    RANDOM = "random"


@dataclass(frozen=True)
class ModeConfig:
    """A fully specified operating-mode configuration.

    Attributes
    ----------
    mode:
        The operating mode.
    min_responses:
        For :attr:`OperatingMode.PARALLEL_DYNAMIC`: adjudicate as soon as
        this many responses have been collected (the TimeOut still caps
        the wait).  Ignored in the other modes.
    sequential_order:
        For :attr:`OperatingMode.SEQUENTIAL`: fixed (deployment) order or
        a fresh random order per demand.
    """

    mode: OperatingMode = OperatingMode.PARALLEL_RELIABILITY
    min_responses: Optional[int] = None
    sequential_order: SequentialOrder = SequentialOrder.FIXED

    def __post_init__(self) -> None:
        if self.mode is OperatingMode.PARALLEL_DYNAMIC:
            if self.min_responses is None or self.min_responses < 1:
                raise ConfigurationError(
                    "parallel-dynamic mode requires min_responses >= 1"
                )
        elif self.min_responses is not None:
            raise ConfigurationError(
                f"min_responses only applies to parallel-dynamic mode, "
                f"not {self.mode.value!r}"
            )

    @classmethod
    def max_reliability(cls) -> "ModeConfig":
        """Mode 1: wait for everything (the Tables 5-6 configuration)."""
        return cls(OperatingMode.PARALLEL_RELIABILITY)

    @classmethod
    def max_responsiveness(cls) -> "ModeConfig":
        """Mode 2: first valid response wins."""
        return cls(OperatingMode.PARALLEL_RESPONSIVENESS)

    @classmethod
    def dynamic(cls, min_responses: int) -> "ModeConfig":
        """Mode 3: adjudicate after *min_responses* responses or TimeOut."""
        return cls(OperatingMode.PARALLEL_DYNAMIC, min_responses=min_responses)

    @classmethod
    def sequential(
        cls, order: SequentialOrder = SequentialOrder.FIXED
    ) -> "ModeConfig":
        """Mode 4: one release at a time, escalating on evident failure."""
        return cls(OperatingMode.SEQUENTIAL, sequential_order=order)
