"""The managed-upgrade architecture (the paper's primary contribution).

* :mod:`repro.core.middleware` — request fan-out, response collection
  with TimeOut, adjudicated reply (§4.1, §5.2.1);
* :mod:`repro.core.adjudicators` — adjudication strategies (§4.2);
* :mod:`repro.core.modes` — the four operating modes (§4.2);
* :mod:`repro.core.monitor` + :mod:`repro.core.database` — the
  monitoring subsystem and its observation database (§4.3);
* :mod:`repro.core.management` — reconfiguration/recovery/logging (§4.4);
* :mod:`repro.core.switching` — switching criteria 1-3 (§5.1.1.2);
* :mod:`repro.core.controller` — automatic switch-over;
* :mod:`repro.core.policies` — baseline upgrade policies (§3).
"""

from repro.core.adjudicators import (
    Adjudication,
    Adjudicator,
    CollectedResponse,
    FastestValidAdjudicator,
    MajorityVoteAdjudicator,
    PaperRuleAdjudicator,
)
from repro.core.modes import ModeConfig, OperatingMode, SequentialOrder
from repro.core.database import (
    DemandRecord,
    ObservationLog,
    ReleaseObservation,
    ReleaseTally,
)
from repro.core.monitor import (
    BackToBackOnlinePolicy,
    MonitoringSubsystem,
    OmissionOnlinePolicy,
    OnlineDetectionPolicy,
)
from repro.core.middleware import UpgradeMiddleware
from repro.core.management import ManagementAction, ManagementSubsystem
from repro.core.switching import (
    AllOfCriterion,
    AnyOfCriterion,
    AvailabilityCriterion,
    CriterionOne,
    CriterionThree,
    CriterionTwo,
    SwitchDecision,
    SwitchingCriterion,
    evaluate_history,
)
from repro.core.controller import SwitchRecord, UpgradeController
from repro.core.self_checking import (
    SelfCheckingAdjudicator,
    SimulatedAcceptanceTest,
    accept_all,
)
from repro.core.upgrade_report import summarize_release, upgrade_report
from repro.core.policies import (
    ConservativeSingleReleaseAdjustment,
    ImmediateSwitchPolicy,
    ManagedUpgradePolicy,
    NeverSwitchPolicy,
    UpgradePolicy,
    expected_incorrect_responses,
)

__all__ = [
    "Adjudication",
    "Adjudicator",
    "CollectedResponse",
    "FastestValidAdjudicator",
    "MajorityVoteAdjudicator",
    "PaperRuleAdjudicator",
    "ModeConfig",
    "OperatingMode",
    "SequentialOrder",
    "DemandRecord",
    "ObservationLog",
    "ReleaseObservation",
    "ReleaseTally",
    "BackToBackOnlinePolicy",
    "MonitoringSubsystem",
    "OmissionOnlinePolicy",
    "OnlineDetectionPolicy",
    "UpgradeMiddleware",
    "ManagementAction",
    "ManagementSubsystem",
    "AllOfCriterion",
    "AnyOfCriterion",
    "AvailabilityCriterion",
    "CriterionOne",
    "CriterionThree",
    "CriterionTwo",
    "SwitchDecision",
    "SwitchingCriterion",
    "evaluate_history",
    "SwitchRecord",
    "UpgradeController",
    "SelfCheckingAdjudicator",
    "SimulatedAcceptanceTest",
    "accept_all",
    "summarize_release",
    "upgrade_report",
    "ConservativeSingleReleaseAdjustment",
    "ImmediateSwitchPolicy",
    "ManagedUpgradePolicy",
    "NeverSwitchPolicy",
    "UpgradePolicy",
    "expected_incorrect_responses",
]
