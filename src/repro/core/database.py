"""Observation database of the monitoring subsystem (paper §4.3).

"Every time the consumer invokes the WS this subsystem monitors the
availability ..., execution time and the correctness of the responses for
each release of the WS and stores these parameters in a database."

:class:`ObservationLog` is that database: an append-only record per
demand, holding per-release observations (collected?, execution time,
judged failure) plus the system-level verdict.  Query helpers aggregate
what the assessors and reports need: per-release tallies, joint Table-1
counts for the white-box inference, and windowed views.
"""

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.bayes.counts import JointCounts
from repro.simulation.outcomes import Outcome


@dataclass(frozen=True)
class ReleaseObservation:
    """What the monitor recorded about one release on one demand.

    Attributes
    ----------
    collected:
        Whether a response arrived within TimeOut.
    execution_time:
        Seconds to respond (None when not collected).
    true_outcome:
        Ground-truth outcome (simulation only; None in production use).
    observed_failure:
        The oracle's verdict after any detection imperfection; None when
        no response was collected (nothing to judge — the availability
        accounting covers it).
    invoked:
        Whether the middleware actually sent this release the request.
        In sequential mode an earlier release's valid response ends the
        demand without invoking the rest; those releases are *not
        invoked* rather than unavailable, and carry no availability
        evidence.  ``invoked-but-silent`` (``invoked and not
        collected``) is the only state that counts against availability.
    """

    collected: bool
    execution_time: Optional[float] = None
    true_outcome: Optional[Outcome] = None
    observed_failure: Optional[bool] = None
    invoked: bool = True

    def __post_init__(self) -> None:
        if self.collected and not self.invoked:
            raise ValueError(
                "a response cannot be collected from a release that "
                "was never invoked"
            )


@dataclass(frozen=True)
class DemandRecord:
    """One demand's complete observation row."""

    request_id: str
    timestamp: float
    releases: Dict[str, ReleaseObservation]
    system_verdict: str
    system_outcome: Optional[Outcome]
    system_time: Optional[float]

    def observation(self, release: str) -> ReleaseObservation:
        return self.releases[release]


@dataclass
class ReleaseTally:
    """Aggregated per-release statistics over a log (or a window of it).

    ``demands`` counts every demand the release was deployed for;
    ``invoked`` counts the demands on which the middleware actually sent
    it the request (in the parallel modes the two are equal; in
    sequential mode ``invoked <= demands``).  Availability is
    responses-per-*invocation*: a release that was simply never asked is
    not thereby unavailable.
    """

    demands: int = 0
    invoked: int = 0
    collected: int = 0
    observed_failures: int = 0
    total_execution_time: float = 0.0

    @property
    def availability(self) -> float:
        return self.collected / self.invoked if self.invoked else float("nan")

    @property
    def mean_execution_time(self) -> float:
        if not self.collected:
            return float("nan")
        return self.total_execution_time / self.collected

    @property
    def observed_failure_rate(self) -> float:
        if not self.collected:
            return float("nan")
        return self.observed_failures / self.collected


class ObservationLog:
    """Append-only demand-observation store with aggregation queries."""

    def __init__(self):
        self._records: List[DemandRecord] = []

    def append(self, record: DemandRecord) -> None:
        """Store one demand's observations."""
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DemandRecord]:
        return iter(self._records)

    def window(self, last: int) -> List[DemandRecord]:
        """The most recent *last* records."""
        if last <= 0:
            return []
        return self._records[-last:]

    def release_names(self) -> List[str]:
        """Every release that appears anywhere in the log."""
        names: List[str] = []
        for record in self._records:
            for name in record.releases:
                if name not in names:
                    names.append(name)
        return names

    def tally(self, release: str, last: Optional[int] = None) -> ReleaseTally:
        """Aggregate one release's availability / MET / failure stats."""
        records = self._records if last is None else self.window(last)
        out = ReleaseTally()
        for record in records:
            observation = record.releases.get(release)
            if observation is None:
                continue
            out.demands += 1
            if observation.invoked:
                out.invoked += 1
            if observation.collected:
                out.collected += 1
                if observation.execution_time is not None:
                    out.total_execution_time += observation.execution_time
                if observation.observed_failure:
                    out.observed_failures += 1
        return out

    def joint_counts(
        self,
        release_a: str,
        release_b: str,
        last: Optional[int] = None,
    ) -> JointCounts:
        """Table-1 counts over demands where *both* releases responded.

        Demands on which either release produced no response carry no
        joint correctness information and are excluded — exactly the data
        the white-box inference of §5.1 consumes.
        """
        records = self._records if last is None else self.window(last)
        r1 = r2 = r3 = r4 = 0
        for record in records:
            obs_a = record.releases.get(release_a)
            obs_b = record.releases.get(release_b)
            if obs_a is None or obs_b is None:
                continue
            if not (obs_a.collected and obs_b.collected):
                continue
            a_failed = bool(obs_a.observed_failure)
            b_failed = bool(obs_b.observed_failure)
            if a_failed and b_failed:
                r1 += 1
            elif a_failed:
                r2 += 1
            elif b_failed:
                r3 += 1
            else:
                r4 += 1
        return JointCounts(r1, r2, r3, r4)

    def system_tally(self) -> Dict[str, int]:
        """System verdict counts (result / all-evident / unavailable)."""
        out: Dict[str, int] = {}
        for record in self._records:
            out[record.system_verdict] = out.get(record.system_verdict, 0) + 1
        return out
