"""Self-checking adjudication (paper §4.2, mode 1's stronger variant).

"Various adjudication mechanisms can be used which range from tolerating
evident failures only to detecting and tolerating non-evident failures.
In the latter case some form of self-checking may be needed which will
allow for diagnosing which of the releases has produced a
(non-evidently) incorrect response before the adjudicated response can
be determined."

An :class:`AcceptanceTest` is that self-check: an application-supplied
predicate over (request, result) that rejects some wrong-but-valid
responses (recovery-block style — the paper's lineage through Randell's
recovery blocks [3]).  :class:`SelfCheckingAdjudicator` filters the
collected valid responses through the acceptance test before applying a
base adjudicator, and exposes coverage accounting so experiments can
sweep acceptance-test quality.
"""

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.common.seeding import DEFAULT_COMPONENT_SEED, spawn_generator
from repro.common.validation import check_probability
from repro.core.adjudicators import (
    Adjudication,
    Adjudicator,
    CollectedResponse,
    PaperRuleAdjudicator,
)
from repro.services.message import RequestMessage

#: Application acceptance test: (request, result) -> acceptable?
AcceptanceTest = Callable[[RequestMessage, object], bool]


def accept_all(request: RequestMessage, result: object) -> bool:
    """The degenerate acceptance test (no self-checking)."""
    return True


@dataclass
class SimulatedAcceptanceTest:
    """A probabilistically imperfect acceptance test for simulation.

    Uses the simulation's reference answer to decide ground truth, then
    imposes the stated imperfection:

    * a *wrong* result is caught with probability ``coverage``;
    * a *correct* result is falsely rejected with probability
      ``false_alarm_rate``.

    The ``reference`` callable maps a request to its ground-truth
    result; in our workloads that is the first argument.
    """

    coverage: float = 0.9
    false_alarm_rate: float = 0.0
    rng: Optional[np.random.Generator] = None
    reference: Callable[[RequestMessage], object] = (
        lambda request: request.arguments[0] if request.arguments else None
    )

    def __post_init__(self) -> None:
        check_probability(self.coverage, "coverage")
        check_probability(self.false_alarm_rate, "false_alarm_rate")
        if self.rng is None:
            # Fixed-seed fallback: acceptance-test draws must stay
            # reproducible even in no-arguments usage (REPRO101).
            self.rng = spawn_generator(DEFAULT_COMPONENT_SEED)

    def __call__(self, request: RequestMessage, result: object) -> bool:
        truth = self.reference(request)
        if truth is None or result == truth:
            # Correct (or unjudgeable) result: accept unless false alarm.
            return not (
                self.false_alarm_rate
                and self.rng.random() < self.false_alarm_rate
            )
        # Wrong result: rejected with probability = coverage.
        return not (self.rng.random() < self.coverage)


class SelfCheckingAdjudicator(Adjudicator):
    """Filter valid responses through an acceptance test, then adjudicate.

    Responses failing the acceptance test are treated like evident
    failures (they are *diagnosed* wrong).  If the test rejects
    everything, the original valid set is restored and handed to the
    base adjudicator — a total self-check outage must not make the
    service less available than without self-checking.
    """

    name = "self-checking"

    def __init__(
        self,
        acceptance_test: AcceptanceTest,
        base: Optional[Adjudicator] = None,
    ):
        self.acceptance_test = acceptance_test
        self.base = base or PaperRuleAdjudicator()
        self.name = f"self-checking({self.base.name})"
        self.rejected = 0
        self.examined = 0

    def adjudicate(
        self,
        request: RequestMessage,
        collected: Sequence[CollectedResponse],
        rng: np.random.Generator,
    ) -> Adjudication:
        valid = [item for item in collected if item.is_valid]
        accepted = []
        for item in valid:
            self.examined += 1
            if self.acceptance_test(request, item.response.result):
                accepted.append(item)
            else:
                self.rejected += 1
        faulty = [item for item in collected if not item.is_valid]
        if valid and not accepted:
            # Self-check rejected everything; fall back to the unfiltered
            # set rather than declaring the service failed.
            accepted = valid
        return self.base.adjudicate(request, [*accepted, *faulty], rng)

    @property
    def rejection_rate(self) -> float:
        """Fraction of examined valid responses the self-check rejected."""
        if not self.examined:
            return float("nan")
        return self.rejected / self.examined
