"""Switching criteria for ending the managed upgrade (paper §5.1.1.2).

Three alternative rules decide when the composite WS may stop the managed
upgrade and switch to the new release:

* **Criterion 1** — the new release reaches the dependability the *old*
  release was credited with when the managed upgrade started: if the
  prior gave ``P(pA <= X) = c``, switch once the posterior gives
  ``P(pB <= X) >= c``.
* **Criterion 2** — the new release meets an explicit target with given
  confidence, e.g. ``P(pB <= 1e-3) >= 99%``; the old release's
  dependability is irrelevant.
* **Criterion 3** — with a given confidence the new release is at least
  as good as the old one *as currently assessed*: ``TB{c}% <= TA{c}%``
  on the posterior percentiles (both priors may drift during the
  upgrade).

Each criterion evaluates either a live :class:`~repro.bayes.whitebox.
WhiteBoxAssessor` or a recorded :class:`~repro.bayes.runner.
CheckpointRecord`; :func:`evaluate_history` turns a full assessment
history into the Table-2 numbers (first satisfaction and, where the
decision oscillates, the point after which it stays satisfied).
"""

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.bayes.beta import TruncatedBeta
from repro.bayes.runner import AssessmentHistory, CheckpointRecord
from repro.bayes.whitebox import WhiteBoxAssessor
from repro.common.errors import ConfigurationError
from repro.common.validation import check_in_range, check_probability


class SwitchingCriterion(ABC):
    """Decides whether the managed upgrade may end."""

    name: str = "criterion"

    @abstractmethod
    def is_satisfied(self, assessor: WhiteBoxAssessor) -> bool:
        """Evaluate against a live assessor."""

    @abstractmethod
    def is_satisfied_record(self, record: CheckpointRecord) -> bool:
        """Evaluate against a recorded checkpoint."""

    def required_confidence_targets(self) -> tuple:
        """pfd targets the sequential runner must record for this
        criterion to be evaluable from checkpoints."""
        return ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CriterionOne(SwitchingCriterion):
    """New release reaches the old release's *prior* dependability level.

    The reference bound ``X`` is the prior's ``confidence``-percentile of
    pA, frozen at upgrade start; the criterion holds when the posterior
    confidence that ``pB <= X`` reaches the same level.
    """

    name = "criterion-1"

    def __init__(
        self, prior_a: TruncatedBeta, confidence: float = 0.99
    ):
        self.confidence = check_in_range(confidence, 0.0, 1.0, "confidence")
        self.prior_a = prior_a
        self.reference_bound = float(prior_a.ppf(self.confidence))

    def is_satisfied(self, assessor: WhiteBoxAssessor) -> bool:
        return assessor.confidence_b(self.reference_bound) >= self.confidence

    def is_satisfied_record(self, record: CheckpointRecord) -> bool:
        return (
            record.confidence_b(self.reference_bound) >= self.confidence
        )

    def required_confidence_targets(self) -> tuple:
        return (self.reference_bound,)

    def __repr__(self) -> str:
        return (
            f"CriterionOne(X={self.reference_bound:.6g}, "
            f"confidence={self.confidence!r})"
        )


class CriterionTwo(SwitchingCriterion):
    """New release meets an explicit pfd target with given confidence."""

    name = "criterion-2"

    def __init__(self, target_pfd: float, confidence: float = 0.99):
        self.target_pfd = check_probability(target_pfd, "target_pfd")
        self.confidence = check_in_range(confidence, 0.0, 1.0, "confidence")

    def is_satisfied(self, assessor: WhiteBoxAssessor) -> bool:
        return assessor.confidence_b(self.target_pfd) >= self.confidence

    def is_satisfied_record(self, record: CheckpointRecord) -> bool:
        return record.confidence_b(self.target_pfd) >= self.confidence

    def required_confidence_targets(self) -> tuple:
        return (self.target_pfd,)

    def __repr__(self) -> str:
        return (
            f"CriterionTwo(target={self.target_pfd!r}, "
            f"confidence={self.confidence!r})"
        )


class CriterionThree(SwitchingCriterion):
    """New release assessed at least as good as the old one: TB% <= TA%."""

    name = "criterion-3"

    def __init__(self, confidence: float = 0.99):
        self.confidence = check_in_range(confidence, 0.0, 1.0, "confidence")

    def is_satisfied(self, assessor: WhiteBoxAssessor) -> bool:
        return assessor.percentile_b(self.confidence) <= assessor.percentile_a(
            self.confidence
        )

    def is_satisfied_record(self, record: CheckpointRecord) -> bool:
        if self.confidence != 0.99:
            raise ConfigurationError(
                "checkpoint records only carry 99% percentiles; use a live "
                "assessor for other confidence levels"
            )
        return record.percentile_b_99 <= record.percentile_a_99

    def __repr__(self) -> str:
        return f"CriterionThree(confidence={self.confidence!r})"


class AllOfCriterion(SwitchingCriterion):
    """Conjunction of criteria: switch only when every part holds.

    An extension beyond the paper's three singleton criteria: e.g.
    require Criterion 3 (comparative correctness) *and* an availability
    floor on the new release before retiring the old one.
    """

    name = "all-of"

    def __init__(self, parts: "list[SwitchingCriterion]"):
        if not parts:
            raise ConfigurationError("AllOfCriterion needs >= 1 part")
        self.parts = list(parts)
        self.name = "all-of(" + ",".join(p.name for p in self.parts) + ")"

    def is_satisfied(self, assessor: WhiteBoxAssessor) -> bool:
        return all(part.is_satisfied(assessor) for part in self.parts)

    def is_satisfied_record(self, record: CheckpointRecord) -> bool:
        return all(part.is_satisfied_record(record) for part in self.parts)

    def required_confidence_targets(self) -> tuple:
        targets = []
        for part in self.parts:
            targets.extend(part.required_confidence_targets())
        return tuple(sorted(set(targets)))

    def __repr__(self) -> str:
        return f"AllOfCriterion({self.parts!r})"


class AnyOfCriterion(SwitchingCriterion):
    """Disjunction of criteria: switch when any part holds."""

    name = "any-of"

    def __init__(self, parts: "list[SwitchingCriterion]"):
        if not parts:
            raise ConfigurationError("AnyOfCriterion needs >= 1 part")
        self.parts = list(parts)
        self.name = "any-of(" + ",".join(p.name for p in self.parts) + ")"

    def is_satisfied(self, assessor: WhiteBoxAssessor) -> bool:
        return any(part.is_satisfied(assessor) for part in self.parts)

    def is_satisfied_record(self, record: CheckpointRecord) -> bool:
        return any(part.is_satisfied_record(record) for part in self.parts)

    def required_confidence_targets(self) -> tuple:
        targets = []
        for part in self.parts:
            targets.extend(part.required_confidence_targets())
        return tuple(sorted(set(targets)))

    def __repr__(self) -> str:
        return f"AnyOfCriterion({self.parts!r})"


class AvailabilityCriterion(SwitchingCriterion):
    """New release's availability meets a floor with given confidence.

    An extension using the §6.1 "confidence in availability" assessors:
    the new release must be *reachable* dependably, not just correct
    when it answers.  Evaluated against the monitoring subsystem rather
    than the white-box correctness assessor, so it composes with the
    correctness criteria via :class:`AllOfCriterion`.
    """

    name = "availability-floor"

    def __init__(
        self,
        monitor,
        release: str,
        target_availability: float = 0.95,
        confidence: float = 0.95,
    ):
        self.monitor = monitor
        self.release = release
        self.target_availability = check_in_range(
            target_availability, 0.0, 1.0, "target_availability"
        )
        self.confidence = check_in_range(confidence, 0.0, 1.0, "confidence")

    def is_satisfied(self, assessor: WhiteBoxAssessor) -> bool:
        del assessor  # availability lives in the monitor, not here
        return (
            self.monitor.confidence_in_availability(
                self.release, self.target_availability
            )
            >= self.confidence
        )

    def is_satisfied_record(self, record: CheckpointRecord) -> bool:
        raise ConfigurationError(
            "availability confidence is not recorded in checkpoint "
            "records; evaluate against a live monitor"
        )

    def __repr__(self) -> str:
        return (
            f"AvailabilityCriterion(release={self.release!r}, "
            f"target={self.target_availability!r}, "
            f"confidence={self.confidence!r})"
        )


@dataclass(frozen=True)
class SwitchDecision:
    """Outcome of evaluating a criterion over an assessment history.

    Attributes
    ----------
    first_satisfied:
        Demands at the first checkpoint where the criterion held, or
        None if never ("not attainable" in Table 2).
    stable_from:
        Demands from which the criterion held at every later checkpoint;
        differs from *first_satisfied* when the decision oscillates (the
        paper's "22,000, oscillates till 26,000" cell).
    oscillated:
        True when the two differ.
    """

    first_satisfied: Optional[int]
    stable_from: Optional[int]

    @property
    def oscillated(self) -> bool:
        return (
            self.first_satisfied is not None
            and self.stable_from is not None
            and self.stable_from != self.first_satisfied
        )

    @property
    def attainable(self) -> bool:
        return self.first_satisfied is not None

    def describe(self, horizon: int) -> str:
        """Render the Table-2 cell text."""
        if not self.attainable:
            return f"not attainable (> {horizon:,})"
        if self.oscillated:
            return (
                f"{self.first_satisfied:,} demands "
                f"(oscillates till {self.stable_from:,})"
            )
        return f"{self.first_satisfied:,} demands"


def evaluate_history(
    criterion: SwitchingCriterion, history: AssessmentHistory
) -> SwitchDecision:
    """Compute first-satisfaction and stabilisation points of a criterion."""
    first: Optional[int] = None
    stable: Optional[int] = None
    for record in history.records:
        satisfied = criterion.is_satisfied_record(record)
        if satisfied:
            if first is None:
                first = record.demands
            if stable is None:
                stable = record.demands
        else:
            stable = None
    return SwitchDecision(first_satisfied=first, stable_from=stable)
