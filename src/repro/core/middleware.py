"""The upgrade middleware (paper §4.1, §5.2.1).

The middleware is the heart of the managed-upgrade architecture: it
intercepts each consumer request arriving at the WS interface, relays it
to every deployed release, collects their responses subject to a TimeOut,
adjudicates them, and returns a single adjudicated response.  Per-demand
observations flow to the monitoring subsystem.

Timing follows eq. (7)-(8): a demand-difficulty component ``T1`` is
sampled once per request and shared by all releases; each release adds
its own ``T2``; the adjudication overhead ``dT`` is added to the system
response time.  Outcome correlation between two releases (Tables 3-4) is
imposed by pre-sampling a joint outcome pair and forcing it onto the
endpoints.
"""

import itertools
from typing import Callable, List, Optional

import numpy as np

from repro.common.errors import ConfigurationError, ValidationError
from repro.common.seeding import spawn_generator
from repro.core.adjudicators import (
    Adjudication,
    Adjudicator,
    CollectedResponse,
    PaperRuleAdjudicator,
)
from repro.core.modes import ModeConfig, OperatingMode, SequentialOrder
from repro.core.monitor import MonitoringSubsystem
from repro.services.endpoint import ServiceEndpoint
from repro.services.message import (
    RequestMessage,
    ResponseMessage,
    fault_response,
)
from repro.simulation.correlation import JointOutcomeModel
from repro.simulation.distributions import Deterministic, Distribution
from repro.simulation.engine import Simulator
from repro.simulation.timing import SystemTimingPolicy

#: Hook signature: called after each demand is closed, with the demand
#: record (None when no monitor is attached).  The upgrade controller
#: registers itself here.
AfterDemandHook = Callable[[object], None]


class UpgradeMiddleware:
    """Managed-upgrade middleware over N deployed releases.

    Parameters
    ----------
    endpoints:
        Deployed releases, old release first by convention.
    timing:
        TimeOut + adjudication delay (eq. 8).
    adjudicator:
        Response adjudication strategy (§5.2.1 rules by default).
    mode:
        Operating mode (§4.2); parallel max-reliability by default.
    monitor:
        Optional monitoring subsystem receiving per-demand observations.
    rng:
        Randomness for adjudication tie-breaks, sequencing and sampling.
    joint_outcome_model:
        When exactly two releases are deployed, pre-samples their
        correlated outcome pair per demand (Tables 3-4).  None lets each
        endpoint sample its own marginal independently.
    demand_difficulty:
        Distribution of the shared T1 execution-time component.
    """

    def __init__(
        self,
        endpoints: List[ServiceEndpoint],
        timing: SystemTimingPolicy,
        rng: np.random.Generator,
        adjudicator: Optional[Adjudicator] = None,
        mode: Optional[ModeConfig] = None,
        monitor: Optional[MonitoringSubsystem] = None,
        joint_outcome_model: Optional[JointOutcomeModel] = None,
        demand_difficulty: Optional[Distribution] = None,
    ):
        if not endpoints:
            raise ConfigurationError("middleware needs at least one release")
        self.endpoints: List[ServiceEndpoint] = list(endpoints)
        self.timing = timing
        self.adjudicator = adjudicator or PaperRuleAdjudicator()
        self.mode = mode or ModeConfig.max_reliability()
        self.monitor = monitor
        self.joint_outcome_model = joint_outcome_model
        self.demand_difficulty = (
            demand_difficulty
            if demand_difficulty is not None
            else Deterministic(0.0)
        )
        self._rng = rng
        # Adjudication tie-breaks draw from their own derived stream so
        # that swapping adjudicators cannot perturb the demand/outcome
        # stream — ablations then compare identical workloads.
        self._adjudication_rng = spawn_generator(
            int(rng.integers(2**63))
        )
        self._after_demand: List[AfterDemandHook] = []
        self.demands = 0
        self._demand_ids = itertools.count()

    # ------------------------------------------------------------------
    # reconfiguration (driven by the management subsystem)
    # ------------------------------------------------------------------

    def release_names(self) -> List[str]:
        return [endpoint.name for endpoint in self.endpoints]

    def add_endpoint(self, endpoint: ServiceEndpoint) -> None:
        """Deploy an additional release behind the interface."""
        if endpoint.name in self.release_names():
            raise ConfigurationError(
                f"release {endpoint.name!r} is already deployed"
            )
        self.endpoints.append(endpoint)

    def remove_endpoint(self, name: str) -> ServiceEndpoint:
        """Phase a release out; raises if it is the last one."""
        if len(self.endpoints) == 1:
            raise ConfigurationError("cannot remove the last release")
        for i, endpoint in enumerate(self.endpoints):
            if endpoint.name == name:
                return self.endpoints.pop(i)
        raise ConfigurationError(f"no deployed release named {name!r}")

    def set_mode(self, mode: ModeConfig) -> None:
        """Switch operating mode (takes effect on the next demand)."""
        self.mode = mode

    def set_timing(self, timing: SystemTimingPolicy) -> None:
        """Change TimeOut / dT (the §4.2 mode-3 dynamic knobs)."""
        self.timing = timing

    def set_adjudicator(self, adjudicator: Adjudicator) -> None:
        """Swap the adjudication mechanism (§6.1 harness operation)."""
        self.adjudicator = adjudicator

    def on_demand_closed(self, hook: AfterDemandHook) -> None:
        """Register a hook called after each demand's record is closed."""
        self._after_demand.append(hook)

    # ------------------------------------------------------------------
    # the port protocol
    # ------------------------------------------------------------------

    def submit(
        self,
        simulator: Simulator,
        request: RequestMessage,
        deliver: Callable[[ResponseMessage], None],
        reference_answer: object = None,
    ) -> None:
        """Serve one consumer demand under the current configuration.

        Delivery guarantee: *deliver* is called exactly once per demand,
        always with a non-None :class:`ResponseMessage` — an adjudicated
        result when one exists, a middleware fault (timeout /
        unavailable) otherwise.
        """
        self.demands += 1
        if self.mode.mode is OperatingMode.SEQUENTIAL:
            _SequentialDemand(self, simulator, request, deliver,
                              reference_answer).start()
        else:
            _ParallelDemand(self, simulator, request, deliver,
                            reference_answer).start()

    # ------------------------------------------------------------------
    # internals shared by the demand state machines
    # ------------------------------------------------------------------

    def _sample_forced_outcomes(self, active: List[ServiceEndpoint]) -> dict:
        if self.joint_outcome_model is None or len(active) < 2:
            return {}
        try:
            outcomes = self.joint_outcome_model.sample_tuple(
                self._rng, len(active)
            )
        except ValidationError:
            # The model cannot correlate this many releases (e.g. a
            # pairwise model with 3 deployed): endpoints fall back to
            # their own marginals.
            return {}
        return {
            endpoint.name: outcome
            for endpoint, outcome in zip(active, outcomes)
        }

    @staticmethod
    def _guaranteed_response(
        request: RequestMessage, adjudication: Adjudication
    ) -> ResponseMessage:
        """The response owed to the consumer for *adjudication*.

        Part of the delivery-guarantee contract: when an adjudicator
        produces no response object (e.g. a custom adjudicator declaring
        the demand undecidable), the consumer still receives an evident
        middleware fault rather than ``None`` — or, worse, nothing.
        """
        if adjudication.response is not None:
            return adjudication.response
        return fault_response(
            request,
            f"no adjudicated response within TimeOut "
            f"({adjudication.verdict})",
            "middleware",
        )

    def _close_demand(
        self,
        request: RequestMessage,
        start_time: float,
        active_names: List[str],
        collected: List[CollectedResponse],
        adjudication: Adjudication,
        system_time: Optional[float],
        timestamp: float,
        reference_answer: object,
        invoked_names: Optional[List[str]] = None,
    ) -> None:
        record = None
        if self.monitor is not None:
            record = self.monitor.record_demand(
                request_id=request.message_id,
                timestamp=start_time,
                active_releases=active_names,
                collected=collected,
                adjudication=adjudication,
                system_time=system_time,
                reference_answer=reference_answer,
                invoked_releases=invoked_names,
            )
        for hook in list(self._after_demand):
            hook(record)

    def __repr__(self) -> str:
        return (
            f"UpgradeMiddleware(releases={self.release_names()!r}, "
            f"mode={self.mode.mode.value!r}, demands={self.demands})"
        )


class _ParallelDemand:
    """State machine for one demand in the parallel modes."""

    def __init__(self, mw, simulator, request, deliver, reference_answer):
        self.mw = mw
        self.simulator = simulator
        self.request = request
        self.deliver = deliver
        self.reference_answer = reference_answer
        self.active = list(mw.endpoints)
        # Snapshot the configuration: a demand keeps the semantics it
        # started with even if management reconfigures mid-flight.
        self.mode = mw.mode
        self.timing = mw.timing
        self.start_time = simulator.now
        self.collected: List[CollectedResponse] = []
        self.delivered = False
        self.closed = False
        self.timeout_event = None
        # The demand id is per-middleware, so traces of one cell are
        # reproducible regardless of process-global message counters.
        self.demand_id = mw.demands
        self._trace = simulator.tracer

    def start(self) -> None:
        mw = self.mw
        if self._trace is not None:
            self._trace.emit(
                "demand", t=self.start_time, demand=self.demand_id,
                mode=self.mode.mode.value,
                releases=[endpoint.name for endpoint in self.active],
            )
        if not self.active:
            self._finalize_and_close()
            return
        forced = mw._sample_forced_outcomes(self.active)
        difficulty = mw.demand_difficulty.sample(mw._rng)
        self.timeout_event = self.simulator.schedule(
            self.timing.timeout,
            self._on_timeout,
            label=f"timeout:d{self.demand_id}",
        )
        for endpoint in self.active:
            if self._trace is not None:
                self._trace.emit(
                    "invoke", t=self.simulator.now, demand=self.demand_id,
                    release=endpoint.name,
                )
            endpoint.invoke(
                self.simulator,
                self.request,
                self._arrival_handler(endpoint),
                reference_answer=self.reference_answer,
                forced_outcome=forced.get(endpoint.name),
                demand_difficulty=difficulty,
            )

    def _arrival_handler(self, endpoint):
        def on_arrival(response: ResponseMessage) -> None:
            if self.closed:
                return
            item = CollectedResponse(
                release=endpoint.name,
                response=response,
                execution_time=self.simulator.now - self.start_time,
            )
            self.collected.append(item)
            if self._trace is not None:
                self._trace.emit(
                    "collect", t=self.simulator.now, demand=self.demand_id,
                    release=endpoint.name, valid=item.is_valid,
                    execution_time=item.execution_time,
                )
            self._maybe_decide()

        return on_arrival

    def _decision_threshold(self) -> int:
        mode = self.mode
        if mode.mode is OperatingMode.PARALLEL_DYNAMIC:
            return min(mode.min_responses, len(self.active))
        return len(self.active)

    def _maybe_decide(self) -> None:
        mode = self.mode
        if mode.mode is OperatingMode.PARALLEL_RESPONSIVENESS:
            # Deliver the first valid response immediately; keep
            # collecting the rest for monitoring until all arrive or
            # TimeOut.
            if not self.delivered and self.collected[-1].is_valid:
                self._deliver_now(self.collected[-1].response,
                                  self.collected[-1].release)
            if len(self.collected) == len(self.active):
                self._finalize_and_close()
            return
        if len(self.collected) >= self._decision_threshold():
            self._finalize_and_close()

    def _on_timeout(self) -> None:
        if not self.closed:
            if self._trace is not None:
                self._trace.emit(
                    "timeout", t=self.simulator.now, demand=self.demand_id,
                    collected=len(self.collected),
                )
            self._finalize_and_close()

    def _send(self, response: ResponseMessage) -> None:
        """Hand *response* to the consumer (the one deliver per demand)."""
        self.deliver(response)
        if self._trace is not None:
            self._trace.emit(
                "deliver", t=self.simulator.now, demand=self.demand_id,
                fault=response.is_fault,
            )

    def _deliver_now(self, response: ResponseMessage, release: str) -> None:
        self.delivered = True
        self.decision_time = self.simulator.now
        self.delivered_adjudication = Adjudication(
            "result", response, release
        )
        delay = self.timing.adjudication_delay
        self.simulator.schedule(
            delay, lambda: self._send(response), label="adjudicated"
        )

    def _finalize_and_close(self) -> None:
        self.closed = True
        if self.timeout_event is not None:
            self.timeout_event.cancel()
        if self.delivered:
            # Responsiveness mode: what reached the consumer is the
            # first valid response — record that, not a re-adjudication
            # over later arrivals the consumer never saw.
            adjudication = self.delivered_adjudication
        else:
            adjudication = self.mw.adjudicator.adjudicate(
                self.request, self.collected, self.mw._adjudication_rng
            )
        if self._trace is not None:
            self._trace.emit(
                "adjudicate", t=self.simulator.now, demand=self.demand_id,
                verdict=adjudication.verdict,
                release=adjudication.chosen_release,
                collected=len(self.collected),
            )
        decision_time = self.simulator.now
        system_time = decision_time - self.start_time
        system_time = (
            min(system_time, self.timing.timeout)
            + self.timing.adjudication_delay
        )
        if self.delivered:
            # Consumer-visible time was set at first-valid delivery.
            system_time = (
                getattr(self, "decision_time", decision_time)
                - self.start_time
                + self.timing.adjudication_delay
            )
        else:
            # Delivery guarantee: every demand not already answered by
            # the responsiveness fast path delivers exactly once here,
            # substituting an evident middleware fault when adjudication
            # produced no response (previously a responsiveness demand
            # timing out with no valid response never delivered at all,
            # and the other modes could deliver a bare None).
            response = self.mw._guaranteed_response(
                self.request, adjudication
            )
            self.simulator.schedule(
                self.timing.adjudication_delay,
                lambda: self._send(response),
                label="adjudicated",
            )
        self.mw._close_demand(
            self.request,
            self.start_time,
            [endpoint.name for endpoint in self.active],
            self.collected,
            adjudication,
            system_time,
            decision_time,
            self.reference_answer,
        )


class _SequentialDemand:
    """State machine for one demand in sequential mode (§4.2 mode 4)."""

    def __init__(self, mw, simulator, request, deliver, reference_answer):
        self.mw = mw
        self.simulator = simulator
        self.request = request
        self.deliver = deliver
        self.reference_answer = reference_answer
        self.active = list(mw.endpoints)
        # Snapshot the configuration: in-flight demands keep the
        # semantics they started with across reconfigurations.
        self.mode = mw.mode
        self.timing = mw.timing
        self.start_time = simulator.now
        self.collected: List[CollectedResponse] = []
        self.closed = False
        self.timeout_event = None
        self._order: List[ServiceEndpoint] = []
        self._next_index = 0
        self.demand_id = mw.demands
        self._trace = simulator.tracer

    def start(self) -> None:
        mw = self.mw
        if self._trace is not None:
            self._trace.emit(
                "demand", t=self.start_time, demand=self.demand_id,
                mode=self.mode.mode.value,
                releases=[endpoint.name for endpoint in self.active],
            )
        if not self.active:
            self._finish()
            return
        self._order = list(self.active)
        if self.mode.sequential_order is SequentialOrder.RANDOM:
            mw._rng.shuffle(self._order)
        self._forced = mw._sample_forced_outcomes(self.active)
        self._difficulty = mw.demand_difficulty.sample(mw._rng)
        self.timeout_event = self.simulator.schedule(
            self.timing.timeout,
            self._on_timeout,
            label=f"timeout:d{self.demand_id}",
        )
        self._invoke_next()

    def _invoke_next(self) -> None:
        if self.closed:
            return
        if self._next_index >= len(self._order):
            self._finish()
            return
        endpoint = self._order[self._next_index]
        self._next_index += 1
        if self._trace is not None:
            self._trace.emit(
                "invoke", t=self.simulator.now, demand=self.demand_id,
                release=endpoint.name,
            )

        def on_arrival(response: ResponseMessage) -> None:
            if self.closed:
                return
            item = CollectedResponse(
                release=endpoint.name,
                response=response,
                execution_time=self.simulator.now - self.start_time,
            )
            self.collected.append(item)
            if self._trace is not None:
                self._trace.emit(
                    "collect", t=self.simulator.now, demand=self.demand_id,
                    release=endpoint.name, valid=item.is_valid,
                    execution_time=item.execution_time,
                )
            if item.is_valid:
                self._finish()
            else:
                # Evidently incorrect: escalate to the next release.
                self._invoke_next()

        endpoint.invoke(
            self.simulator,
            self.request,
            on_arrival,
            reference_answer=self.reference_answer,
            forced_outcome=self._forced.get(endpoint.name),
            demand_difficulty=self._difficulty,
        )

    def _on_timeout(self) -> None:
        if not self.closed:
            if self._trace is not None:
                self._trace.emit(
                    "timeout", t=self.simulator.now, demand=self.demand_id,
                    collected=len(self.collected),
                )
            self._finish()

    def _finish(self) -> None:
        self.closed = True
        if self.timeout_event is not None:
            self.timeout_event.cancel()
        adjudication = self.mw.adjudicator.adjudicate(
            self.request, self.collected, self.mw._adjudication_rng
        )
        if self._trace is not None:
            self._trace.emit(
                "adjudicate", t=self.simulator.now, demand=self.demand_id,
                verdict=adjudication.verdict,
                release=adjudication.chosen_release,
                collected=len(self.collected),
            )
        decision_time = self.simulator.now
        system_time = (
            min(decision_time - self.start_time, self.timing.timeout)
            + self.timing.adjudication_delay
        )
        # Delivery guarantee: the consumer always receives a response
        # object, even when the adjudicator returned none.
        response = self.mw._guaranteed_response(self.request, adjudication)
        self.simulator.schedule(
            self.timing.adjudication_delay,
            lambda: self._send(response),
            label="adjudicated",
        )
        self.mw._close_demand(
            self.request,
            self.start_time,
            [endpoint.name for endpoint in self.active],
            self.collected,
            adjudication,
            system_time,
            decision_time,
            self.reference_answer,
            # Releases after the escalation point were never invoked on
            # this demand; the monitor must not score them unavailable.
            invoked_names=[
                endpoint.name
                for endpoint in self._order[:self._next_index]
            ],
        )

    def _send(self, response: ResponseMessage) -> None:
        """Hand *response* to the consumer (the one deliver per demand)."""
        self.deliver(response)
        if self._trace is not None:
            self._trace.emit(
                "deliver", t=self.simulator.now, demand=self.demand_id,
                fault=response.is_fault,
            )
