"""Response adjudication (paper §4.2, §5.2.1).

The management subsystem adjudicates the responses collected from the
deployed releases and returns a single response to the consumer.  The
paper's simulated middleware uses the rules of §5.2.1, implemented here
as :class:`PaperRuleAdjudicator`; a majority voter and a fastest-valid
adjudicator cover the other mechanisms the test harness offers (§6.1:
"users can explicitly specify the adjudication mechanism ... e.g.
majority voter or other plans").
"""

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.services.message import (
    RequestMessage,
    ResponseMessage,
    fault_response,
)


@dataclass(frozen=True)
class CollectedResponse:
    """One release's response as seen by the middleware.

    Attributes
    ----------
    release:
        Name of the responding release.
    response:
        The response envelope.
    execution_time:
        Seconds from request fan-out to this response's arrival.
    """

    release: str
    response: ResponseMessage
    execution_time: float

    @property
    def is_valid(self) -> bool:
        """Valid = not evidently incorrect (§5.2.1's sense)."""
        return not self.response.is_fault


@dataclass(frozen=True)
class Adjudication:
    """The middleware's decision for one demand.

    ``verdict`` is one of

    * ``"result"`` — a valid adjudicated response is returned;
    * ``"all-evident"`` — every collected response was evidently
      incorrect, so the middleware raises an (evident) exception;
    * ``"unavailable"`` — nothing was collected within TimeOut
      ("Web Service unavailable").
    """

    verdict: str
    response: Optional[ResponseMessage]
    chosen_release: Optional[str] = None


class Adjudicator(ABC):
    """Strategy interface for adjudicating collected responses."""

    name: str = "adjudicator"

    @abstractmethod
    def adjudicate(
        self,
        request: RequestMessage,
        collected: Sequence[CollectedResponse],
        rng: np.random.Generator,
    ) -> Adjudication:
        """Produce the adjudicated response for one demand."""

    def _unavailable(self, request: RequestMessage) -> Adjudication:
        return Adjudication(
            "unavailable",
            fault_response(request, "Web Service unavailable", "middleware"),
        )

    def _all_evident(self, request: RequestMessage) -> Adjudication:
        return Adjudication(
            "all-evident",
            fault_response(
                request, "all releases failed evidently", "middleware"
            ),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PaperRuleAdjudicator(Adjudicator):
    """The §5.2.1 rules, verbatim.

    1. no responses collected -> 'Web Service unavailable';
    2. all collected responses evidently incorrect -> evident exception;
    3. all valid responses identical -> return it (it may still be a
       coincident non-evident failure);
    4. otherwise -> return a *random* valid response (a correct response
       may exist among the collected ones and still not be picked);
    5. a single valid response (e.g. at TimeOut) is returned as-is —
       subsumed by rules 3/4.
    """

    name = "paper-random-valid"

    def adjudicate(
        self,
        request: RequestMessage,
        collected: Sequence[CollectedResponse],
        rng: np.random.Generator,
    ) -> Adjudication:
        if not collected:
            return self._unavailable(request)
        valid = [c for c in collected if c.is_valid]
        if not valid:
            return self._all_evident(request)
        results = {repr(c.response.result) for c in valid}
        if len(results) == 1:
            chosen = valid[0]
        else:
            chosen = valid[int(rng.integers(len(valid)))]
        return Adjudication("result", chosen.response, chosen.release)


class MajorityVoteAdjudicator(Adjudicator):
    """Return the result produced by a strict majority of valid responses.

    Without a strict majority the adjudicator falls back to a random
    valid response (matching the paper's rule 4); ties are therefore not
    silently broken in favour of any release.
    """

    name = "majority-vote"

    def adjudicate(
        self,
        request: RequestMessage,
        collected: Sequence[CollectedResponse],
        rng: np.random.Generator,
    ) -> Adjudication:
        if not collected:
            return self._unavailable(request)
        valid = [c for c in collected if c.is_valid]
        if not valid:
            return self._all_evident(request)
        tally = Counter(repr(c.response.result) for c in valid)
        winner, votes = tally.most_common(1)[0]
        if votes * 2 > len(valid):
            for c in valid:
                if repr(c.response.result) == winner:
                    return Adjudication("result", c.response, c.release)
        chosen = valid[int(rng.integers(len(valid)))]
        return Adjudication("result", chosen.response, chosen.release)


class FastestValidAdjudicator(Adjudicator):
    """Return the earliest-arriving valid response (§4.2 mode 2's rule)."""

    name = "fastest-valid"

    def adjudicate(
        self,
        request: RequestMessage,
        collected: Sequence[CollectedResponse],
        rng: np.random.Generator,
    ) -> Adjudication:
        if not collected:
            return self._unavailable(request)
        valid = [c for c in collected if c.is_valid]
        if not valid:
            return self._all_evident(request)
        chosen = min(valid, key=lambda c: c.execution_time)
        return Adjudication("result", chosen.response, chosen.release)
